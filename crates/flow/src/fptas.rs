//! The Garg–Könemann / Fleischer FPTAS for max concurrent flow over the
//! shared [`CsrNet`], with certified primal and dual bounds,
//! phase-parallel shortest-path computation, and an incremental
//! shortest-path fast path.
//!
//! ## Sketch
//!
//! Maintain a length `l(a)` per arc, initially `1/c(a)`. In each *phase*,
//! route every commodity's demand along shortest paths under the current
//! lengths, multiplying the length of every used arc `a` by
//! `1 + ε·(sent_a / c(a))`; congested arcs grow exponentially long, so
//! later flow avoids them. The accumulated (infeasible) flow divided by
//! its maximum congestion is feasible; LP duality gives the upper bound
//! `λ* ≤ D(l)/α(l)` for *any* positive lengths `l`, where
//! `D(l) = Σ_a c(a)·l(a)` and `α(l) = Σ_j d_j · dist_l(s_j, t_j)`.
//! We track the best (smallest) dual bound seen and stop as soon as the
//! certified primal/dual gap is below `target_gap`.
//!
//! ## Two execution strategies
//!
//! Commodities are grouped by source; routing is *sequential in fixed
//! group order* in both modes, so seeded runs are bit-identical at every
//! thread count either way. [`crate::FlowOptions::strict_reference`]
//! selects the trajectory:
//!
//! * **Fast path (default).** Each source group keeps a *full*
//!   shortest-path tree in its [`DijkstraWorkspace`] and routes against
//!   it through a three-tier reuse ladder (see [`solve_fast`] docs):
//!   exact reuse of untouched paths (increase-only lengths keep them
//!   *exactly* shortest), Fleischer `(1+ε·δ)` drift tolerance for
//!   touched ones, and [`CsrNet::dijkstra_repair`] — an increase-only
//!   incremental re-settle of just the drifted subtree, fed by a global
//!   length-increase log with one cursor per group — beyond the gate.
//!   Every few phases all trees are rebuilt in one **rayon-parallel**
//!   exact pass, the dual bound is harvested every phase for free from
//!   the (possibly mixed-age) trees, `D(l)` is maintained incrementally
//!   at the length-update sites (verified against the full sum in debug
//!   builds), and the step size ε anneals from coarse to the configured
//!   value as the certified gap closes. None of this bends correctness:
//!   the primal stays feasible by construction (capacity-scaled steps)
//!   and `D(l)/α(l)` upper-bounds λ* for *any* positive lengths, so the
//!   reported gap is certified no matter how the trajectory was chosen.
//! * **Strict path** (`strict_reference: true`). The retained
//!   pre-fast-path trajectory: every inner augmentation recomputes the
//!   group's shortest-path tree under the current lengths with
//!   target-set early termination — operation-for-operation the
//!   trajectory of [`crate::reference`], so the two produce
//!   bit-identical results. This is the escape hatch that keeps the
//!   legacy baseline pinned.
//!
//! Every multi-tree pass (the strict dual pass, the fast path's batched
//! rebuilds) writes into disjoint per-group workspaces and fans out on
//! **rayon**, with every floating-point reduction performed sequentially
//! in fixed group order — so a seeded run is **bit-identical at every
//! thread count**. Routing itself is kept sequential deliberately:
//! length updates are a serial dependency, and routing on stale length
//! snapshots (the obvious way to parallelise it) measurably slows
//! convergence — more phases to reach `target_gap` than the parallel
//! passes save.

use std::collections::HashMap;

use dctopo_graph::{CsrNet, DeltaStats, DijkstraWorkspace, NodeId};
use dctopo_obs as obs;
use rayon::prelude::*;

use crate::trace::with_delta_stats;
use crate::{validate, Commodity, FlowError, FlowOptions, SolvedFlow};

/// Minimum `source groups × arcs` before the dual-bound Dijkstra pass
/// fans out on rayon; below this, even a pool dispatch costs more than
/// the pass. Rayon's persistent worker pool made fan-out ~two orders of
/// magnitude cheaper than the scoped-thread spawning this gate was
/// originally calibrated for (65536), so instances as small as a
/// 32-switch RRG now take the parallel path.
const PARALLEL_DUAL_MIN_WORK: usize = 1 << 12;

/// The dual bound D(l)/α(l) is invariant under uniform scaling of all
/// lengths, and so are shortest paths — so we rescale whenever lengths
/// grow large to avoid overflow corrupting the bound.
const RESCALE_ABOVE: f64 = 1e100;

/// Node count at or above which the fast path's **full-tree** passes
/// (exact rebuilds, post-rescale refreshes, full-tree dual harvests)
/// run the bucketed parallel SSSP ([`dctopo_graph::delta`]) instead of
/// scalar heap Dijkstra. Distances are bitwise identical either way;
/// parent trees may differ inside float-absorption plateaus (both
/// valid, both deterministic), which can steer a different — equally
/// certified — trajectory. The gate keeps the small pinned instances
/// (RRG(64, 12, 8) benches, strict-vs-fast pins) on their historical
/// byte-exact trajectories while 1024-switch solves get bucket-level
/// parallelism inside every tree build, not just across groups.
const DELTA_MIN_NODES: usize = 512;

/// Terminal solver state a later solve can warm-start from: the arc
/// length function the FPTAS ended on.
///
/// Soundness rests on the same two facts as the fast path itself: the
/// primal is feasible by construction (capacity-scaled steps), and the
/// dual `D(l)/α(l)` upper-bounds λ* for **any** positive length
/// function — so seeding the next solve's lengths from a previous
/// solve's terminal state changes the trajectory, never the
/// certificates. A warm solve's reported `(throughput, upper_bound)`
/// interval is certified exactly as a cold one's is.
///
/// Warm states transfer across [`CsrNet`] **views** of one structure:
/// arc ids are stable across `with_capacity_overrides` /
/// `with_scaled_capacity` views, and the lengths are re-anchored (and
/// invalid entries healed per-arc) by the normalization in
/// [`max_concurrent_flow_warm`], so a state learned under one capacity
/// profile is a usable starting point for a re-rated or drifted-demand
/// solve of the same structure. An empty state (the default) means
/// "cold": solving with it is identical to [`max_concurrent_flow_csr`].
#[derive(Debug, Clone, Default)]
pub struct WarmState {
    /// Terminal arc lengths (empty = cold). Indexed by arc id of the
    /// net the state was produced on.
    lengths: Vec<f64>,
}

impl WarmState {
    /// A cold (empty) state.
    pub fn cold() -> Self {
        WarmState::default()
    }

    /// Whether the state carries any learned lengths.
    pub fn is_seeded(&self) -> bool {
        !self.lengths.is_empty()
    }

    /// Number of arcs the stored lengths cover (0 when cold).
    pub fn arc_count(&self) -> usize {
        self.lengths.len()
    }
}

/// Normalize a warm state's lengths into a valid initial length
/// function for `net`, or `None` when the state is unusable (cold, or
/// sized for a different arc space) and the solve should start cold.
///
/// The dual bound and shortest paths are invariant under uniform
/// scaling, so the lengths are re-anchored to the cold-start gauge:
/// scaled so the minimum of `l(a)·c(a)` over live arcs is 1 (cold start
/// has `l·c = 1` everywhere). Per-arc healing keeps the function
/// strictly positive on live arcs no matter what the previous view did:
/// non-finite/non-positive entries (e.g. arcs that were disabled in the
/// view the state was learned on) fall back to the cold `1/c(a)`, dead
/// arcs get 0.0 (never traversed), and survivors clamp at
/// [`RESCALE_ABOVE`] like any in-solve length.
fn warm_lengths(net: &CsrNet, warm: &WarmState) -> Option<Vec<f64>> {
    if warm.lengths.len() != net.arc_count() {
        return None;
    }
    let caps = net.capacities();
    let mut anchor = f64::INFINITY;
    for (a, &l) in warm.lengths.iter().enumerate() {
        if caps[a] > 0.0 && l.is_finite() && l > 0.0 {
            anchor = anchor.min(l * caps[a]);
        }
    }
    if !(anchor.is_finite() && anchor > 0.0) {
        return None;
    }
    let scale = 1.0 / anchor;
    let out: Vec<f64> = warm
        .lengths
        .iter()
        .enumerate()
        .map(|(a, &l)| {
            if caps[a] <= 0.0 {
                0.0
            } else if l.is_finite() && l > 0.0 {
                (l * scale).min(RESCALE_ABOVE)
            } else {
                net.inv_capacity(a)
            }
        })
        .collect();
    Some(out)
}

/// One full shortest-path tree under `length`: bucketed parallel SSSP
/// at scale, scalar Dijkstra below [`DELTA_MIN_NODES`]. Either way the
/// workspace ends in completed-full-run state, satisfying
/// [`CsrNet::dijkstra_repair`]'s preconditions.
#[inline]
pub(crate) fn full_tree(net: &CsrNet, src: NodeId, length: &[f64], ws: &mut DijkstraWorkspace) {
    if net.node_count() >= DELTA_MIN_NODES {
        dctopo_graph::delta::sssp(net, src, length, ws);
    } else {
        net.dijkstra(src, length, ws);
    }
}

/// Fast path: opening (coarse) step size of the annealing schedule.
/// Solves whose configured ε is already coarser start there instead.
/// Calibrated on RRG(64, 12, 8) permutation sweeps — see `BENCH_fptas`.
const COARSE_EPS: f64 = 0.55;

/// Fast path: rebuild every tree (making that phase's dual bound the
/// exact `D(l)/α(l)`) and compact the increase log every this many
/// phases. Between exact passes trees are only repaired lazily by the
/// routing ladder and the per-phase dual bound is the valid mixed-age
/// lower-bound form.
const EXACT_PASS_EVERY: usize = 2;

/// Fast path: tier-2 tolerates a touched path while its current length
/// is within `1 + ε·DRIFT_FRACTION` of the tree-time distance. Measured
/// cliff: fractions ≥ ~0.75 let groups keep loading paths competitors
/// already saturated and the phase count explodes; 0.5 is the sweet
/// spot between skipped rebuilds and routing reactivity.
const DRIFT_FRACTION: f64 = 0.5;

/// One source group: commodities sharing a source, plus the group's
/// persistent Dijkstra scratch state.
struct GroupState {
    src: NodeId,
    /// (commodity index, dst, demand)
    sinks: Vec<(usize, NodeId, f64)>,
    /// Unique sink nodes: the strict path's Dijkstra stops once all of
    /// them are settled (the fast path keeps full trees instead).
    targets: Vec<u32>,
    /// Per-group scratch: written by the parallel pass, read by routing.
    /// In fast mode it holds the group's persistent shortest-path tree.
    ws: DijkstraWorkspace,
    /// Per-sink demand left to route in the current phase.
    remaining: Vec<f64>,
    /// Fast path: absolute increase-log position up to which this
    /// group's tree is exact (pending repairs start there).
    cursor: usize,
    /// Fast path: the tree's stored distances are unusable (after a
    /// uniform length rescale) — recompute in full before routing.
    needs_full: bool,
}

fn group_by_source(commodities: &[Commodity], n: usize) -> Vec<GroupState> {
    let mut groups: Vec<GroupState> = Vec::new();
    // hash-map index over sources; `groups` itself preserves first-seen
    // source order, so grouping stays stable while lookup is O(1)
    // (the old linear rescan was quadratic on all-to-all matrices)
    let mut index: HashMap<NodeId, usize> = HashMap::with_capacity(commodities.len().min(n));
    for (i, c) in commodities.iter().enumerate() {
        match index.get(&c.src) {
            Some(&gi) => groups[gi].sinks.push((i, c.dst, c.demand)),
            None => {
                index.insert(c.src, groups.len());
                groups.push(GroupState {
                    src: c.src,
                    sinks: vec![(i, c.dst, c.demand)],
                    targets: Vec::new(),
                    ws: DijkstraWorkspace::new(n),
                    remaining: Vec::new(),
                    cursor: 0,
                    needs_full: false,
                });
            }
        }
    }
    for g in &mut groups {
        g.remaining = vec![0.0; g.sinks.len()];
        g.targets = g.sinks.iter().map(|&(_, dst, _)| dst as u32).collect();
        g.targets.sort_unstable();
        g.targets.dedup();
    }
    groups
}

/// `D(l) = Σ_a c(a)·l(a)` as one full pass (the strict path's per-call
/// form, and the fast path's init/rescale/debug-verification form).
fn weighted_length_sum(net: &CsrNet, length: &[f64]) -> f64 {
    length
        .iter()
        .zip(net.capacities())
        .map(|(&l, &c)| l * c)
        .sum()
}

/// Solve max concurrent flow on `net` for `commodities` with the
/// phase-parallel FPTAS.
///
/// Returns a [`SolvedFlow`] whose `throughput` is a *feasible* concurrent
/// rate and whose `upper_bound` certifies how far from optimal it can be.
/// [`FlowOptions::strict_reference`] selects between the incremental
/// fast path (default) and the legacy trajectory (see module docs).
///
/// # Errors
///
/// * [`FlowError::Unreachable`] if any commodity's endpoints are in
///   different components.
/// * validation errors for empty/invalid inputs (see [`FlowError`]).
pub fn max_concurrent_flow_csr(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    max_concurrent_flow_warm(net, commodities, opts, None).map(|(sol, _)| sol)
}

/// [`max_concurrent_flow_csr`] with cross-solve warm-starting: seed the
/// fast path's initial lengths from a previous solve's terminal
/// [`WarmState`] and return the new terminal state for the next solve.
///
/// `warm: None` (or an empty/ill-sized state) is **bit-identical** to
/// the cold [`max_concurrent_flow_csr`] — the warm hook changes nothing
/// until a usable state is supplied. The strict path
/// ([`FlowOptions::strict_reference`]) never warm-starts (its whole
/// point is the pinned legacy trajectory) and returns a cold state.
///
/// A warm-started solve follows a different — typically much shorter —
/// trajectory, but its certificates are as strong as a cold solve's:
/// the primal is feasible by construction and the dual bound holds for
/// any positive lengths (see [`WarmState`]). Warm solves also skip the
/// coarse-ε annealing ramp: the inherited lengths already encode the
/// congestion landscape the ramp exists to discover.
///
/// # Errors
/// As [`max_concurrent_flow_csr`].
pub fn max_concurrent_flow_warm(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
    warm: Option<&WarmState>,
) -> Result<(SolvedFlow, WarmState), FlowError> {
    validate(net.node_count(), commodities, opts)?;
    if net.arc_count() == 0 {
        // commodities exist but there are no edges at all
        let c = &commodities[0];
        return Err(FlowError::Unreachable {
            src: c.src,
            dst: c.dst,
        });
    }
    if opts.strict_reference {
        Ok((solve_strict(net, commodities, opts)?, WarmState::cold()))
    } else {
        solve_fast(net, commodities, opts, warm)
    }
}

/// The legacy trajectory: recompute each group's (early-terminated)
/// shortest-path tree on every inner augmentation. Bit-identical to
/// [`crate::reference::max_concurrent_flow_graph`].
fn solve_strict(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    let num_arcs = net.arc_count();
    let eps = opts.epsilon;
    let mut groups = group_by_source(commodities, net.node_count());
    let inv_cap = net.inv_capacities();

    // lengths l(a) = 1/c(a) initially
    let mut length: Vec<f64> = inv_cap.to_vec();
    // raw (pre-scaling) accumulated flow
    let mut arc_flow = vec![0.0f64; num_arcs];
    let mut routed = vec![0.0f64; commodities.len()];
    // optional per-commodity arc-flow record, same units as arc_flow
    let mut cf: Option<Vec<Vec<f64>>> = opts
        .record_commodity_flows
        .then(|| vec![vec![0.0f64; num_arcs]; commodities.len()]);

    let mut best_dual = f64::INFINITY;
    // reachability check up front (also seeds the first dual bound)
    let d_l = weighted_length_sum(net, &length);
    if let Some(bound) = dual_bound(net, &mut groups, &length, d_l, false)? {
        best_dual = best_dual.min(bound);
    }
    // evaluate the dual every few phases (it changes slowly and costs a
    // Dijkstra per source group — the parallel pass)
    let dual_every = 8usize;
    // plateau detection: stop when the primal stops improving materially
    let mut last_primal_check = 0.0f64;
    let mut stagnant_phases = 0usize;

    let mut best: Option<SolvedFlow> = None;
    let mut phases = 0usize;
    // routing scratch shared across groups (routing is sequential)
    let mut tree_load = vec![0.0f64; num_arcs];
    let mut touched: Vec<usize> = Vec::new();
    let t_solve = obs::clock();

    while phases < opts.max_phases {
        phases += 1;
        let t_phase = obs::clock();
        // sequential routing in fixed group order, shortest paths always
        // under the *current* lengths (see module docs for why routing
        // is not parallelised)
        for g in &mut groups {
            for (k, &(_, _, d)) in g.sinks.iter().enumerate() {
                g.remaining[k] = d;
            }
            let mut inner = 0usize;
            // route until the group's phase demand is (essentially) done
            while g.remaining.iter().any(|&r| r > 1e-12) {
                inner += 1;
                if inner > 64 {
                    // Extremely skewed instances can shrink τ repeatedly;
                    // carry the leftover to the next phase (correctness is
                    // unaffected — `routed` only counts what was sent).
                    break;
                }
                net.dijkstra_targets(g.src, &length, &g.targets, &mut g.ws);
                // accumulate load if all remaining demand were routed
                touched.clear();
                for (k, &(_, dst, _)) in g.sinks.iter().enumerate() {
                    let r = g.remaining[k];
                    if r <= 1e-12 {
                        continue;
                    }
                    if !g.ws.distance(dst).is_finite() {
                        return Err(FlowError::Unreachable { src: g.src, dst });
                    }
                    g.ws.walk_path(net, dst, |a| {
                        if tree_load[a] == 0.0 {
                            touched.push(a);
                        }
                        tree_load[a] += r;
                    });
                }
                // capacity-scaled step: never send more than c(a) on any arc
                let mut tau = 1.0f64;
                for &a in &touched {
                    tau = tau.min(net.capacity(a) / tree_load[a]);
                }
                // send τ·remaining along the tree, update lengths.
                // Divide by the capacity (rather than multiplying by the
                // precomputed reciprocal the fast path uses): division
                // is what `reference` does, and the strict path's whole
                // point is ulp-for-ulp agreement with it.
                for &a in &touched {
                    let sent = tau * tree_load[a];
                    arc_flow[a] += sent;
                    length[a] *= 1.0 + eps * (sent / net.capacity(a));
                    tree_load[a] = 0.0;
                }
                // mirror the same tree walk into the per-commodity
                // record before `remaining` is consumed; the workspace
                // still holds the tree the load was charged along
                if let Some(cf) = cf.as_mut() {
                    for (k, &(j, dst, _)) in g.sinks.iter().enumerate() {
                        let r = g.remaining[k];
                        if r <= 1e-12 {
                            continue;
                        }
                        let sent = tau * r;
                        g.ws.walk_path(net, dst, |a| cf[j][a] += sent);
                    }
                }
                for (k, &(j, _, _)) in g.sinks.iter().enumerate() {
                    let sent = tau * g.remaining[k];
                    routed[j] += sent;
                    g.remaining[k] -= sent;
                }
                if tau >= 1.0 {
                    break;
                }
            }
        }

        // rescale lengths when they get large (scale-invariant)
        let max_len = length.iter().copied().fold(0.0f64, f64::max);
        if max_len > RESCALE_ABOVE {
            let inv = 1.0 / max_len;
            for l in length.iter_mut() {
                *l *= inv;
            }
        }

        // certified primal: scale by max congestion
        let mu = arc_flow
            .iter()
            .zip(net.capacities())
            .map(|(&f, &c)| f / c)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let primal = commodities
            .iter()
            .enumerate()
            .map(|(j, c)| routed[j] / (mu * c.demand))
            .fold(f64::INFINITY, f64::min);

        // certified dual: D(l)/α(l) at current lengths, every few phases
        // — the rayon-parallel source-group Dijkstra pass
        if phases.is_multiple_of(dual_every) || phases == opts.max_phases {
            let d_l = weighted_length_sum(net, &length);
            if let Some(bound) = dual_bound(net, &mut groups, &length, d_l, false)? {
                best_dual = best_dual.min(bound);
            }
        }

        // emission sits in the sequential phase loop, so the event
        // sequence is deterministic whenever solves themselves are run
        // sequentially (see dctopo-obs crate docs)
        if obs::enabled() {
            obs::Event::new("fptas_phase")
                .field("mode", "strict")
                .field("phase", phases as u64)
                .field("eps", eps)
                .field("primal", primal)
                .field("dual", best_dual)
                .field(
                    "settles",
                    groups.iter().map(|g| g.ws.settles()).sum::<u64>(),
                )
                .nd("wall_us", obs::us_since(t_phase))
                .emit();
        }

        let better = best.as_ref().is_none_or(|b| primal > b.throughput);
        if better {
            best = Some(SolvedFlow {
                throughput: primal,
                upper_bound: best_dual,
                arc_flow: arc_flow.iter().map(|&f| f / mu).collect(),
                commodity_rate: routed.iter().map(|&r| r / mu).collect(),
                phases,
                settles: 0,
                commodity_arc_flow: cf.as_ref().map(|c| {
                    c.iter()
                        .map(|v| v.iter().map(|&f| f / mu).collect())
                        .collect()
                }),
            });
        }
        if primal >= (1.0 - opts.target_gap) * best_dual {
            break;
        }
        // plateau stop: the primal is certified-feasible regardless; when
        // it stops improving the remaining gap is dual-side looseness
        if primal > last_primal_check * 1.0005 {
            last_primal_check = primal;
            stagnant_phases = 0;
        } else {
            stagnant_phases += 1;
            if stagnant_phases >= opts.stall_phases {
                break;
            }
        }
    }

    let mut sol = best.expect("at least one phase ran");
    sol.upper_bound = best_dual;
    sol.phases = phases;
    sol.settles = groups.iter().map(|g| g.ws.settles()).sum();
    if obs::enabled() {
        let mut ds = DeltaStats::default();
        for g in &groups {
            ds.merge(g.ws.delta_stats());
        }
        with_delta_stats(
            obs::Event::new("fptas_solve")
                .field("mode", "strict")
                .field("groups", groups.len())
                .field("commodities", commodities.len())
                .field("phases", phases as u64)
                .field("settles", sol.settles)
                .field("lambda", sol.throughput)
                .field("upper_bound", sol.upper_bound),
            &ds,
        )
        .nd("wall_us", obs::us_since(t_solve))
        .emit();
    }
    Ok(sol)
}

/// The incremental fast path. Each source group keeps a persistent
/// **full** shortest-path tree and routes against it through a
/// three-tier reuse ladder, cheapest first:
///
/// 1. **Exact reuse.** Lengths only grow, so a routed path none of
///    whose arcs changed since the tree was computed is *still exactly
///    shortest* — every alternative only got longer. A per-arc update
///    stamp (`updated_at`) makes this an O(path) check.
/// 2. **Fleischer drift tolerance.** A touched path may still be
///    routed while its current length stays within a `(1+ε·δ)` factor
///    of the tree-time distance (a valid lower bound on the current
///    shortest distance). The certified primal/dual bounds hold for
///    any routing, so this trades a little path quality for skipped
///    recomputes.
/// 3. **Incremental repair.** Beyond the gate,
///    [`CsrNet::dijkstra_repair`] re-settles just the subtrees hanging
///    off the arcs that actually grew (`log[cursor..]`) instead of
///    recomputing from scratch.
///
/// Ladder misses rebuild lazily (speculative per-phase refreshes
/// measurably double-pay: a tree rebuilt at phase start is often
/// drifted again before its routing turn). Every [`EXACT_PASS_EVERY`]
/// phases a **rayon-parallel** exact pass (disjoint workspaces)
/// rebuilds all trees against one length snapshot, which makes that
/// phase's dual bound exact and lets the increase log compact; the
/// in-between phases harvest the valid mixed-age bound for free. The
/// step size ε anneals from [`COARSE_EPS`] down to the configured
/// value as the certified gap closes — coarse steps cross the early
/// primal ground in far fewer phases, fine steps finish the endgame.
fn solve_fast(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
    warm: Option<&WarmState>,
) -> Result<(SolvedFlow, WarmState), FlowError> {
    let num_arcs = net.arc_count();
    let eps = opts.epsilon;
    let mut groups = group_by_source(commodities, net.node_count());
    let inv_cap = net.inv_capacities();

    // Cross-solve warm start: inherit a previous solve's terminal
    // lengths (re-anchored to the cold gauge, per-arc healed) instead
    // of the flat `1/c(a)` opener. An unusable state degrades to a
    // cold start, bit-identical to `warm: None`.
    let warm_init = warm.and_then(|w| warm_lengths(net, w));
    let warm_started = warm_init.is_some();
    let mut length: Vec<f64> = warm_init.unwrap_or_else(|| inv_cap.to_vec());
    let mut arc_flow = vec![0.0f64; num_arcs];
    let mut routed = vec![0.0f64; commodities.len()];
    // optional per-commodity arc-flow record, same units as arc_flow
    let mut cf: Option<Vec<Vec<f64>>> = opts
        .record_commodity_flows
        .then(|| vec![vec![0.0f64; num_arcs]; commodities.len()]);

    // D(l) maintained incrementally at the length-update sites below;
    // recomputed in full only at init and after a uniform rescale, and
    // cross-checked against the full sum in debug builds.
    let mut d_l = weighted_length_sum(net, &length);

    // Global monotone increase log. `clock = base + log.len()` is an
    // absolute event counter; a group whose tree was computed at
    // absolute cursor `c` repairs with `log[c - base..]`. `updated_at`
    // holds each arc's last absolute update index (the exact-reuse
    // stamp). The log prefix is compacted whenever every cursor reaches
    // the clock (each dual refresh), keeping memory proportional to the
    // inter-refresh update volume.
    let mut log: Vec<u32> = Vec::new();
    let mut base = 0usize;
    let mut updated_at = vec![usize::MAX; num_arcs];

    let mut best_dual = f64::INFINITY;
    // seeds every group's full tree and checks reachability up front
    if let Some(bound) = dual_bound(net, &mut groups, &length, d_l, true)? {
        best_dual = best_dual.min(bound);
    }
    let dual_every = EXACT_PASS_EVERY;
    let mut last_primal_check = 0.0f64;
    let mut stagnant_phases = 0usize;

    let mut best: Option<SolvedFlow> = None;
    let mut phases = 0usize;
    let mut tree_load = vec![0.0f64; num_arcs];
    let mut touched: Vec<usize> = Vec::new();
    // Annealed step size: open with a coarse ε (few, productive phases
    // while the primal is far from optimal), halve it whenever the
    // primal stalls, and finish at the configured ε which governs the
    // endgame accuracy. Both certificates remain valid at every step —
    // the primal is feasible by construction and `D(l)/α(l)` bounds λ*
    // for *any* positive lengths — so annealing changes the trajectory,
    // never the guarantees.
    //
    // A warm-started solve skips the ramp entirely: the inherited
    // lengths already encode the congestion landscape the coarse
    // phases exist to discover, and re-coarsening would churn them.
    let mut eps_cur = if warm_started {
        eps
    } else {
        eps.max(COARSE_EPS)
    };
    // Patience before halving ε (or, at the final ε, before the
    // `stall_phases` plateau stop takes over).
    let anneal_patience = 10usize.min(opts.stall_phases);

    // Tier-ladder telemetry: augmentations accepted on an exact tree
    // (tier 1 / post-repair), accepted inside the drift gate (tier 2),
    // incremental repairs (tier 3), and post-rescale full rebuilds.
    // Per-phase counts with running solve totals; deterministic (pure
    // functions of the trajectory) and cheap (a few scalar adds per
    // augmentation), so they are maintained unconditionally — only
    // event emission is gated on `obs::enabled()`.
    let (mut ph_exact, mut ph_drift, mut ph_repairs, mut ph_rebuilds) = (0u64, 0u64, 0u64, 0u64);
    let (mut tot_exact, mut tot_drift, mut tot_repairs, mut tot_rebuilds) =
        (0u64, 0u64, 0u64, 0u64);
    let t_solve = obs::clock();

    while phases < opts.max_phases {
        phases += 1;
        let t_phase = obs::clock();
        // Tier-2 gate: tolerate a touched path while its current length
        // stays within (1 + ε/2) of the tree-time distance. A
        // tighter-than-(1+ε) gate keeps routing reactive to other
        // groups' congestion (the multiplicative-weights trajectory
        // degrades sharply when groups keep loading paths that
        // competitors already saturated).
        let drift = 1.0 + eps_cur * DRIFT_FRACTION;

        // ---- periodic exact pass (the parallel refresh) ----
        // Trees are rebuilt *lazily* inside the routing ladder (a
        // speculative per-phase refresh measurably double-pays: a tree
        // rebuilt at phase start is often drifted again by the earlier
        // groups of the same phase before its turn comes). Every
        // `dual_every`-th phase, though, all trees are rebuilt in one
        // rayon-parallel pass against a consistent length snapshot so
        // the dual bound below is the exact `D(l)/α(l)`, every repair
        // cursor realigns, and the increase log can be compacted.
        let exact_pass = phases.is_multiple_of(dual_every) || phases == opts.max_phases;
        if exact_pass {
            let clock = base + log.len();
            let rebuild = |g: &mut GroupState| {
                full_tree(net, g.src, &length, &mut g.ws);
                g.cursor = clock;
                g.needs_full = false;
            };
            if groups.len() * net.arc_count() >= PARALLEL_DUAL_MIN_WORK {
                groups.par_iter_mut().for_each(rebuild);
            } else {
                groups.iter_mut().for_each(rebuild);
            }
        }

        // ---- dual bound, every phase and essentially free ----
        // Each group's stored distances were exact under the (older)
        // lengths its tree was computed at; lengths only grow, so they
        // are lower bounds on the current distances, Σ d_j·dist_j is a
        // lower bound on α(l), and `d_l / Σ` is a *valid* (if slightly
        // weak) upper bound on λ*. On exact-pass phases every tree was
        // just rebuilt, making the bound the exact `D(l)/α(l)`.
        //
        // The one exception is the aftermath of a uniform rescale:
        // un-rebuilt trees then hold distances in *pre-rescale* units —
        // far larger than any current distance, which would fabricate a
        // too-small (invalid!) bound. Skip the harvest until the next
        // rebuild has cleared every `needs_full` flag.
        if groups.iter().all(|g| !g.needs_full) {
            #[cfg(debug_assertions)]
            {
                let full = weighted_length_sum(net, &length);
                debug_assert!(
                    (d_l - full).abs() <= 1e-6 * full.max(f64::MIN_POSITIVE),
                    "incremental D(l) drifted: {d_l} vs {full}"
                );
            }
            let mut alpha = 0.0f64;
            for g in groups.iter() {
                for &(_, dst, demand) in &g.sinks {
                    alpha += demand * g.ws.distance(dst);
                }
            }
            let bound = d_l / alpha;
            if bound.is_finite() && bound > 0.0 {
                best_dual = best_dual.min(bound);
            }
        }
        if exact_pass {
            // every cursor is at the clock: compact the increase log
            base += log.len();
            log.clear();
        }

        // ---- sequential routing in fixed group order ----
        for g in &mut groups {
            for (k, &(_, _, d)) in g.sinks.iter().enumerate() {
                g.remaining[k] = d;
            }
            let mut inner = 0usize;
            while g.remaining.iter().any(|&r| r > 1e-12) {
                inner += 1;
                if inner > 64 {
                    // carry skewed-instance leftovers to the next phase
                    // (correctness unaffected; see strict path)
                    break;
                }
                if g.needs_full {
                    // post-rescale: stored distances are in pre-rescale
                    // units, so the drift gate cannot be trusted — rebuild
                    full_tree(net, g.src, &length, &mut g.ws);
                    g.cursor = base + log.len();
                    g.needs_full = false;
                    ph_rebuilds += 1;
                }
                // walk the tree through the reuse ladder; repair at most
                // once per augmentation (a repaired tree is exact)
                let mut exact = base + log.len() == g.cursor;
                loop {
                    touched.clear();
                    let mut stale = false;
                    for (k, &(_, dst, _)) in g.sinks.iter().enumerate() {
                        let r = g.remaining[k];
                        if r <= 1e-12 {
                            continue;
                        }
                        if !g.ws.distance(dst).is_finite() {
                            return Err(FlowError::Unreachable { src: g.src, dst });
                        }
                        let mut plen = 0.0f64;
                        let mut hit = false;
                        g.ws.walk_path(net, dst, |a| {
                            if tree_load[a] == 0.0 {
                                touched.push(a);
                            }
                            tree_load[a] += r;
                            plen += length[a];
                            hit |= updated_at[a] != usize::MAX && updated_at[a] >= g.cursor;
                        });
                        // tier 1: untouched path is still exactly
                        // shortest; tier 2: touched but within the gate
                        if !exact && hit && plen > drift * g.ws.distance(dst) {
                            stale = true;
                            break;
                        }
                    }
                    if !stale {
                        break;
                    }
                    // tier 3: incremental repair of the drifted tree
                    // (every stored tree is full — seeded, exact-pass,
                    // and repaired trees all settle the component, as
                    // repair's preconditions require)
                    for &a in &touched {
                        tree_load[a] = 0.0;
                    }
                    net.dijkstra_repair(g.src, &length, &log[g.cursor - base..], &mut g.ws);
                    g.cursor = base + log.len();
                    exact = true;
                    ph_repairs += 1;
                }
                if exact {
                    ph_exact += 1;
                } else {
                    ph_drift += 1;
                }
                let mut tau = 1.0f64;
                for &a in &touched {
                    tau = tau.min(net.capacity(a) / tree_load[a]);
                }
                for &a in &touched {
                    let sent = tau * tree_load[a];
                    arc_flow[a] += sent;
                    let old = length[a];
                    let new = old * (1.0 + eps_cur * (sent * inv_cap[a]));
                    length[a] = new;
                    // incremental D(l), the repair log, and the
                    // exact-reuse stamp — all maintained at the one
                    // place lengths ever change
                    d_l += net.capacity(a) * (new - old);
                    updated_at[a] = base + log.len();
                    log.push(a as u32);
                    tree_load[a] = 0.0;
                }
                // mirror the same tree walk into the per-commodity
                // record before `remaining` is consumed; the workspace
                // still holds the tree the load was charged along
                if let Some(cf) = cf.as_mut() {
                    for (k, &(j, dst, _)) in g.sinks.iter().enumerate() {
                        let r = g.remaining[k];
                        if r <= 1e-12 {
                            continue;
                        }
                        let sent = tau * r;
                        g.ws.walk_path(net, dst, |a| cf[j][a] += sent);
                    }
                }
                for (k, &(j, _, _)) in g.sinks.iter().enumerate() {
                    let sent = tau * g.remaining[k];
                    routed[j] += sent;
                    g.remaining[k] -= sent;
                }
                if tau >= 1.0 {
                    break;
                }
            }
        }

        // rescale lengths when they get large (scale-invariant). Scaling
        // is not an arcwise *increase*, so incremental repair no longer
        // applies: recompute D(l) in full and flag every tree for a full
        // rebuild in the next refresh pass.
        let max_len = length.iter().copied().fold(0.0f64, f64::max);
        if max_len > RESCALE_ABOVE {
            let inv = 1.0 / max_len;
            for l in length.iter_mut() {
                *l *= inv;
            }
            d_l = weighted_length_sum(net, &length);
            for g in groups.iter_mut() {
                g.needs_full = true;
            }
        }

        let mu = arc_flow
            .iter()
            .zip(inv_cap)
            .map(|(&f, &ic)| f * ic)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let primal = commodities
            .iter()
            .enumerate()
            .map(|(j, c)| routed[j] / (mu * c.demand))
            .fold(f64::INFINITY, f64::min);

        // emission sits in the sequential phase loop, so the event
        // sequence is deterministic whenever solves themselves are run
        // sequentially (see dctopo-obs crate docs)
        if obs::enabled() {
            obs::Event::new("fptas_phase")
                .field("mode", "fast")
                .field("phase", phases as u64)
                .field("eps", eps_cur)
                .field("exact_pass", exact_pass)
                .field("primal", primal)
                .field("dual", best_dual)
                .field("d_l", d_l)
                .field("aug_exact", ph_exact)
                .field("aug_drift", ph_drift)
                .field("repairs", ph_repairs)
                .field("rescale_rebuilds", ph_rebuilds)
                .field(
                    "settles",
                    groups.iter().map(|g| g.ws.settles()).sum::<u64>(),
                )
                .nd("wall_us", obs::us_since(t_phase))
                .emit();
        }
        tot_exact += ph_exact;
        tot_drift += ph_drift;
        tot_repairs += ph_repairs;
        tot_rebuilds += ph_rebuilds;
        (ph_exact, ph_drift, ph_repairs, ph_rebuilds) = (0, 0, 0, 0);

        let better = best.as_ref().is_none_or(|b| primal > b.throughput);
        if better {
            best = Some(SolvedFlow {
                throughput: primal,
                upper_bound: best_dual,
                arc_flow: arc_flow.iter().map(|&f| f / mu).collect(),
                commodity_rate: routed.iter().map(|&r| r / mu).collect(),
                phases,
                settles: 0,
                commodity_arc_flow: cf.as_ref().map(|c| {
                    c.iter()
                        .map(|v| v.iter().map(|&f| f / mu).collect())
                        .collect()
                }),
            });
        }
        if primal >= (1.0 - opts.target_gap) * best_dual {
            break;
        }
        // a coarse step size has done its job once the certified gap
        // shrinks to its own order (it cannot certify much further):
        // halve ε and keep going
        if eps_cur > eps && primal >= (1.0 - eps_cur) * best_dual {
            let next = (eps_cur * 0.5).max(eps);
            if obs::enabled() {
                obs::Event::new("fptas_anneal")
                    .field("phase", phases as u64)
                    .field("from", eps_cur)
                    .field("to", next)
                    .field("reason", "gap")
                    .emit();
            }
            eps_cur = next;
            stagnant_phases = 0;
        }
        if primal > last_primal_check * 1.0005 {
            last_primal_check = primal;
            stagnant_phases = 0;
        } else {
            stagnant_phases += 1;
            // a stall at a coarse ε also means that step is exhausted
            if eps_cur > eps && stagnant_phases >= anneal_patience {
                let next = (eps_cur * 0.5).max(eps);
                if obs::enabled() {
                    obs::Event::new("fptas_anneal")
                        .field("phase", phases as u64)
                        .field("from", eps_cur)
                        .field("to", next)
                        .field("reason", "stall")
                        .emit();
                }
                eps_cur = next;
                stagnant_phases = 0;
            } else if stagnant_phases >= opts.stall_phases {
                break;
            }
        }
    }

    let mut sol = best.expect("at least one phase ran");
    sol.upper_bound = best_dual;
    sol.phases = phases;
    sol.settles = groups.iter().map(|g| g.ws.settles()).sum();
    if obs::enabled() {
        let mut ds = DeltaStats::default();
        for g in &groups {
            ds.merge(g.ws.delta_stats());
        }
        with_delta_stats(
            obs::Event::new("fptas_solve")
                .field("mode", "fast")
                .field("warm", warm_started)
                .field("groups", groups.len())
                .field("commodities", commodities.len())
                .field("phases", phases as u64)
                .field("settles", sol.settles)
                .field("aug_exact", tot_exact)
                .field("aug_drift", tot_drift)
                .field("repairs", tot_repairs)
                .field("rescale_rebuilds", tot_rebuilds)
                .field("lambda", sol.throughput)
                .field("upper_bound", sol.upper_bound),
            &ds,
        )
        .nd("wall_us", obs::us_since(t_solve))
        .emit();
    }
    Ok((sol, WarmState { lengths: length }))
}

/// The certified dual bound `D(l)/α(l)` at the given lengths, or `None`
/// when the ratio is degenerate (e.g. α = 0 before any length growth).
///
/// `d_l` is `D(l) = Σ_a c(a)·l(a)` supplied by the caller (the strict
/// path computes it in full per call; the fast path maintains it
/// incrementally). `α(l)` needs one shortest-path tree per source group
/// against fixed lengths — a read-only pass that runs **in parallel on
/// rayon** into the disjoint per-group workspaces; with `full_trees`
/// the pass settles whole components (the fast path's tree refresh),
/// otherwise it early-terminates at each group's targets. The `α`
/// reduction itself is sequential in group order, so the bound is
/// bit-identical at every thread count.
fn dual_bound(
    net: &CsrNet,
    groups: &mut [GroupState],
    length: &[f64],
    d_l: f64,
    full_trees: bool,
) -> Result<Option<f64>, FlowError> {
    let settle = |g: &mut GroupState| {
        if full_trees {
            full_tree(net, g.src, length, &mut g.ws);
        } else {
            net.dijkstra_targets(g.src, length, &g.targets, &mut g.ws);
        }
    };
    // Fan out only when the pass is big enough to amortise the pool
    // dispatch (and to avoid contending for pool workers when many
    // Runner threads each solve their own instance). Results are
    // identical either way — the sequential path is exactly the
    // one-thread schedule.
    if groups.len() * net.arc_count() >= PARALLEL_DUAL_MIN_WORK {
        groups.par_iter_mut().for_each(settle);
    } else {
        groups.iter_mut().for_each(settle);
    }
    let mut alpha = 0.0f64;
    for g in groups.iter() {
        for &(_, dst, demand) in &g.sinks {
            let d = g.ws.distance(dst);
            if !d.is_finite() {
                return Err(FlowError::Unreachable { src: g.src, dst });
            }
            alpha += demand * d;
        }
    }
    let bound = d_l / alpha;
    Ok((bound.is_finite() && bound > 0.0).then_some(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_concurrent_flow;
    use dctopo_graph::Graph;
    use rayon::ThreadPoolBuilder;

    fn opts() -> FlowOptions {
        FlowOptions {
            epsilon: 0.05,
            target_gap: 0.02,
            max_phases: 20000,
            stall_phases: 2000,
            ..FlowOptions::default()
        }
    }

    /// Flow on a single edge: one unit-demand commodity, capacity 1 → λ = 1.
    #[test]
    fn single_edge() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let s = max_concurrent_flow(&g, &[Commodity::unit(0, 1)], &opts()).unwrap();
        assert!(
            s.throughput > 0.97 && s.throughput <= 1.0 + 1e-9,
            "λ = {}",
            s.throughput
        );
        assert!(s.upper_bound >= s.throughput);
        // the dual approaches λ* = 1 from above, stopping within the gap
        assert!(
            s.upper_bound <= 1.0 / (1.0 - 0.02) + 1e-9,
            "dual = {}",
            s.upper_bound
        );
    }

    /// Two commodities share one unit edge → λ = 1/2 each.
    #[test]
    fn shared_bottleneck() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(1, 2).unwrap();
        let cs = [Commodity::unit(0, 2), Commodity::unit(1, 2)];
        let s = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        assert!((s.throughput - 0.5).abs() < 0.02, "λ = {}", s.throughput);
    }

    /// 4-cycle, opposite corners: two edge-disjoint 2-hop paths → λ = 2
    /// for a single unit commodity.
    #[test]
    fn cycle_multipath() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let s = max_concurrent_flow(&g, &[Commodity::unit(0, 2)], &opts()).unwrap();
        assert!((s.throughput - 2.0).abs() < 0.06, "λ = {}", s.throughput);
    }

    /// Capacity scaling: doubling all capacities doubles λ.
    #[test]
    fn capacity_scaling() {
        let mut g1 = Graph::new(3);
        g1.add_edge(0, 1, 1.0).unwrap();
        g1.add_edge(1, 2, 1.0).unwrap();
        let mut g2 = Graph::new(3);
        g2.add_edge(0, 1, 2.0).unwrap();
        g2.add_edge(1, 2, 2.0).unwrap();
        let cs = [Commodity::unit(0, 2)];
        let s1 = max_concurrent_flow(&g1, &cs, &opts()).unwrap();
        let s2 = max_concurrent_flow(&g2, &cs, &opts()).unwrap();
        assert!((s2.throughput / s1.throughput - 2.0).abs() < 0.08);
    }

    /// Demand scaling: doubling demand halves λ.
    #[test]
    fn demand_scaling() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let s1 = max_concurrent_flow(
            &g,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 1.0,
            }],
            &opts(),
        )
        .unwrap();
        let s2 = max_concurrent_flow(
            &g,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 2.0,
            }],
            &opts(),
        )
        .unwrap();
        assert!((s1.throughput / s2.throughput - 2.0).abs() < 0.08);
    }

    /// Flow solution is actually feasible: no arc over capacity.
    #[test]
    fn feasibility_certificate() {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let cs = [
            Commodity::unit(0, 3),
            Commodity::unit(1, 4),
            Commodity::unit(2, 0),
            Commodity::unit(4, 2),
        ];
        let s = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        for a in 0..g.arc_count() {
            assert!(
                s.arc_flow[a] <= g.arc_capacity(a) * (1.0 + 1e-9),
                "arc {a} over capacity: {} > {}",
                s.arc_flow[a],
                g.arc_capacity(a)
            );
        }
        // each commodity achieves at least λ·d
        for (j, c) in cs.iter().enumerate() {
            assert!(s.commodity_rate[j] >= s.throughput * c.demand - 1e-9);
        }
        assert!(s.gap() <= 0.02 + 1e-9);
    }

    /// Unreachable destination is an error, not a hang — on both paths.
    #[test]
    fn unreachable_errors() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let r = max_concurrent_flow(&g, &[Commodity::unit(0, 3)], &opts());
        assert!(matches!(r, Err(FlowError::Unreachable { src: 0, dst: 3 })));
        let strict = opts().with_strict_reference(true);
        let r = max_concurrent_flow(&g, &[Commodity::unit(0, 3)], &strict);
        assert!(matches!(r, Err(FlowError::Unreachable { src: 0, dst: 3 })));
    }

    /// Star network: k leaves all sending to the hub through unit edges.
    #[test]
    fn star_to_hub() {
        let k = 6;
        let mut g = Graph::new(k + 1);
        for v in 1..=k {
            g.add_unit_edge(v, 0).unwrap();
        }
        let cs: Vec<_> = (1..=k).map(|v| Commodity::unit(v, 0)).collect();
        let s = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        // each leaf has its own edge → λ = 1
        assert!((s.throughput - 1.0).abs() < 0.03, "λ = {}", s.throughput);
    }

    /// Mean flow path length on a path graph equals the hop distance.
    #[test]
    fn mean_path_len() {
        let mut g = Graph::new(4);
        for v in 0..3 {
            g.add_unit_edge(v, v + 1).unwrap();
        }
        let s = max_concurrent_flow(&g, &[Commodity::unit(0, 3)], &opts()).unwrap();
        assert!((s.mean_flow_path_len() - 3.0).abs() < 1e-6);
    }

    /// Utilization on the single-edge instance is flow/capacity over both
    /// directions: 1 unit flows one way on a 2-unit bidirectional edge.
    #[test]
    fn utilization_definition() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let s = max_concurrent_flow(&g, &[Commodity::unit(0, 1)], &opts()).unwrap();
        let u = s.utilization(&g);
        assert!((u - 0.5).abs() < 0.03, "U = {u}");
        let eu = s.edge_utilization(&g);
        assert!((eu[0] - 1.0).abs() < 0.03);
    }

    /// Heterogeneous capacities: big trunk plus thin side path.
    #[test]
    fn heterogeneous_capacities() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        let s = max_concurrent_flow(
            &g,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 1.0,
            }],
            &opts(),
        )
        .unwrap();
        assert!((s.throughput - 11.0).abs() < 0.4, "λ = {}", s.throughput);
    }

    /// The strict escape hatch reproduces the retained baseline
    /// bit-for-bit — the pin that keeps `reference` honest.
    #[test]
    fn strict_path_matches_reference_bitwise() {
        let mut g = Graph::new(9);
        for v in 0..9 {
            g.add_unit_edge(v, (v + 1) % 9).unwrap();
        }
        g.add_edge(0, 4, 2.0).unwrap();
        g.add_edge(2, 7, 0.5).unwrap();
        let cs = [
            Commodity::unit(0, 5),
            Commodity::unit(1, 6),
            Commodity::unit(0, 3),
            Commodity {
                src: 7,
                dst: 2,
                demand: 1.5,
            },
        ];
        let strict = opts().with_strict_reference(true);
        let a = crate::reference::max_concurrent_flow_graph(&g, &cs, &strict).unwrap();
        let b = max_concurrent_flow(&g, &cs, &strict).unwrap();
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        assert_eq!(a.phases, b.phases);
        for (x, y) in a.arc_flow.iter().zip(&b.arc_flow) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.commodity_rate.iter().zip(&b.commodity_rate) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The fast path certifies the same optimum as the strict path.
    #[test]
    fn fast_path_agrees_with_strict() {
        let mut g = Graph::new(16);
        for v in 0..16 {
            g.add_unit_edge(v, (v + 1) % 16).unwrap();
        }
        for v in 0..8 {
            g.add_edge(v, v + 8, 1.5).unwrap();
        }
        let cs: Vec<Commodity> = (0..8).map(|v| Commodity::unit(v, (v + 7) % 16)).collect();
        let fast = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        let strict = max_concurrent_flow(&g, &cs, &opts().with_strict_reference(true)).unwrap();
        // both certify their own interval around the same optimum
        assert!(fast.throughput <= strict.upper_bound * (1.0 + 1e-9));
        assert!(strict.throughput <= fast.upper_bound * (1.0 + 1e-9));
        assert!(fast.gap() <= 0.02 + 1e-9, "fast gap {}", fast.gap());
    }

    /// Both paths report their settle instrumentation (the sweep-scale
    /// "fast settles less" property lives in `tests/properties.rs`,
    /// which can build real RRG instances).
    #[test]
    fn settle_instrumentation_reported() {
        let mut g = Graph::new(6);
        for v in 0..6 {
            g.add_unit_edge(v, (v + 1) % 6).unwrap();
        }
        let cs = [Commodity::unit(0, 3), Commodity::unit(1, 4)];
        for strict in [false, true] {
            let s = max_concurrent_flow(&g, &cs, &opts().with_strict_reference(strict)).unwrap();
            assert!(s.settles > 0, "strict {strict}: no settles recorded");
        }
    }

    /// `warm: None` and an empty/ill-sized [`WarmState`] are bitwise
    /// the cold solve — the warm hook is invisible until a usable
    /// state is supplied.
    #[test]
    fn warm_none_is_bitwise_cold() {
        let mut g = Graph::new(12);
        for v in 0..12 {
            g.add_unit_edge(v, (v + 1) % 12).unwrap();
        }
        g.add_edge(0, 6, 2.0).unwrap();
        let net = dctopo_graph::CsrNet::from_graph(&g);
        let cs: Vec<Commodity> = (0..6).map(|v| Commodity::unit(v, (v + 5) % 12)).collect();
        let o = opts();
        let cold = max_concurrent_flow_csr(&net, &cs, &o).unwrap();
        let (none, state) = max_concurrent_flow_warm(&net, &cs, &o, None).unwrap();
        let (empty, _) = max_concurrent_flow_warm(&net, &cs, &o, Some(&WarmState::cold())).unwrap();
        let bad = WarmState {
            lengths: vec![1.0; 3], // wrong arc space → degrade to cold
        };
        let (ill, _) = max_concurrent_flow_warm(&net, &cs, &o, Some(&bad)).unwrap();
        for s in [&none, &empty, &ill] {
            assert_eq!(cold.throughput.to_bits(), s.throughput.to_bits());
            assert_eq!(cold.upper_bound.to_bits(), s.upper_bound.to_bits());
            assert_eq!(cold.phases, s.phases);
            for (x, y) in cold.arc_flow.iter().zip(&s.arc_flow) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(state.is_seeded());
        assert_eq!(state.arc_count(), net.arc_count());
    }

    /// A warm-started re-solve of a drifted instance certifies an
    /// interval overlapping the cold solve's, at the same target gap —
    /// the soundness half of the serve-mode warm-reuse contract.
    #[test]
    fn warm_resolve_certificates_overlap_cold() {
        let mut g = Graph::new(16);
        for v in 0..16 {
            g.add_unit_edge(v, (v + 1) % 16).unwrap();
        }
        for v in 0..8 {
            g.add_edge(v, v + 8, 1.5).unwrap();
        }
        let net = dctopo_graph::CsrNet::from_graph(&g);
        let cs: Vec<Commodity> = (0..8).map(|v| Commodity::unit(v, (v + 7) % 16)).collect();
        let o = opts();
        let (_, state) = max_concurrent_flow_warm(&net, &cs, &o, None).unwrap();
        // drift demands ±10% deterministically
        let drifted: Vec<Commodity> = cs
            .iter()
            .enumerate()
            .map(|(i, c)| Commodity {
                demand: c.demand * (0.9 + 0.2 * (i as f64 / 7.0)),
                ..*c
            })
            .collect();
        let cold = max_concurrent_flow_csr(&net, &drifted, &o).unwrap();
        let (warm, next) = max_concurrent_flow_warm(&net, &drifted, &o, Some(&state)).unwrap();
        // a warm solve may plateau-stop slightly past the target (its
        // inherited lengths make the *dual* tighter from phase one);
        // the certified gap stays O(ε) regardless
        let gap_cap = o.target_gap.max(o.epsilon) + 1e-9;
        assert!(warm.gap() <= gap_cap, "warm gap {}", warm.gap());
        assert!(warm.throughput <= cold.upper_bound * (1.0 + 1e-9));
        assert!(cold.throughput <= warm.upper_bound * (1.0 + 1e-9));
        assert!(next.is_seeded());
        // feasibility of the warm primal: no arc over capacity
        for a in 0..net.arc_count() {
            assert!(warm.arc_flow[a] <= net.capacity(a) * (1.0 + 1e-9));
        }
    }

    /// The strict path refuses to warm-start: its output with a seeded
    /// state is bitwise the strict cold output, and it hands back a
    /// cold state.
    #[test]
    fn strict_path_never_warm_starts() {
        let mut g = Graph::new(8);
        for v in 0..8 {
            g.add_unit_edge(v, (v + 1) % 8).unwrap();
        }
        let net = dctopo_graph::CsrNet::from_graph(&g);
        let cs = [Commodity::unit(0, 4), Commodity::unit(1, 5)];
        let o = opts();
        let (_, seeded) = max_concurrent_flow_warm(&net, &cs, &o, None).unwrap();
        let strict = o.with_strict_reference(true);
        let cold = max_concurrent_flow_csr(&net, &cs, &strict).unwrap();
        let (warm, state) = max_concurrent_flow_warm(&net, &cs, &strict, Some(&seeded)).unwrap();
        assert_eq!(cold.throughput.to_bits(), warm.throughput.to_bits());
        assert_eq!(cold.upper_bound.to_bits(), warm.upper_bound.to_bits());
        assert!(!state.is_seeded());
    }

    /// The headline determinism guarantee: a seeded instance solved at
    /// 1, 2, and 8 rayon threads produces bit-identical output — on the
    /// fast path (default) and the strict path alike.
    #[test]
    fn bit_identical_across_thread_counts() {
        // ring + chords with many source groups so the parallel pass
        // actually splits work
        let mut g = Graph::new(24);
        for v in 0..24 {
            g.add_unit_edge(v, (v + 1) % 24).unwrap();
        }
        for v in 0..8 {
            g.add_edge(v, v + 12, 1.5).unwrap();
        }
        let cs: Vec<Commodity> = (0..12).map(|v| Commodity::unit(v, (v + 11) % 24)).collect();
        for strict in [false, true] {
            let o = opts().with_strict_reference(strict);
            let solve_at = |threads: usize| {
                ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap()
                    .install(|| max_concurrent_flow(&g, &cs, &o).unwrap())
            };
            let base = solve_at(1);
            for threads in [2, 8] {
                let s = solve_at(threads);
                assert_eq!(
                    base.throughput.to_bits(),
                    s.throughput.to_bits(),
                    "{threads} threads (strict: {strict})"
                );
                assert_eq!(base.upper_bound.to_bits(), s.upper_bound.to_bits());
                assert_eq!(base.phases, s.phases);
                assert_eq!(base.settles, s.settles);
                assert_eq!(base.arc_flow.len(), s.arc_flow.len());
                for (a, (x, y)) in base.arc_flow.iter().zip(&s.arc_flow).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "arc {a} at {threads} threads");
                }
                for (x, y) in base.commodity_rate.iter().zip(&s.commodity_rate) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
