//! Exact max concurrent flow via the edge-flow LP, solved with
//! `dctopo-linprog`'s simplex.
//!
//! Variables: `x[j][a]` (flow of commodity `j` on arc `a`) and `λ`.
//! Maximise `λ` subject to per-commodity flow conservation with source
//! surplus `λ·d_j` and joint arc capacities. This is the formulation the
//! paper hands to CPLEX; we use it as ground truth for the FPTAS on
//! instances small enough for a dense simplex (≲ 6,000 variables).
//!
//! The LP is assembled from the shared [`CsrNet`] arc arrays; the
//! [`crate::ExactLp`] backend wraps [`exact_solved_flow`], which also
//! recovers the optimal per-arc flow and per-commodity rates from the
//! simplex solution so exact results are drop-in replacements for FPTAS
//! results everywhere downstream (metrics, decomposition, figures).

use dctopo_graph::{CsrNet, Graph};
use dctopo_linprog::{LinearProgram, LpOutcome};

use crate::{validate, Commodity, FlowError, FlowOptions, SolvedFlow};

/// Upper bound on LP variables we are willing to hand the dense simplex.
const MAX_VARS: usize = 6_000;

/// Exact optimal concurrent throughput λ*, or an error if the instance is
/// too large / malformed. Convenience wrapper over [`exact_solved_flow`].
pub fn exact_max_concurrent_flow(g: &Graph, commodities: &[Commodity]) -> Result<f64, FlowError> {
    exact_solved_flow(&CsrNet::from_graph(g), commodities, &FlowOptions::default())
        .map(|s| s.throughput)
}

/// Solve the exact LP on a prebuilt net, returning the full certified
/// flow (`upper_bound == throughput` up to simplex tolerance; `phases`
/// reports 1).
///
/// # Errors
/// [`FlowError::BadOptions`] when the instance exceeds the dense-simplex
/// budget, is infeasible, or unbounded; validation errors as usual.
pub fn exact_solved_flow(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    // validation shared with the FPTAS (iterative knobs are ignored here
    // but still range-checked for interface uniformity)
    validate(net.node_count(), commodities, opts)?;
    let k = commodities.len();
    let m = net.arc_count();
    let n = net.node_count();
    let num_vars = k * m + 1;
    if num_vars > MAX_VARS {
        return Err(FlowError::BadOptions(format!(
            "exact LP would need {num_vars} variables (limit {MAX_VARS}); use the FPTAS"
        )));
    }
    let lambda = k * m; // index of λ
    let mut lp = LinearProgram::new(num_vars);
    lp.set_objective(lambda, 1.0);

    let var = |j: usize, a: usize| j * m + a;

    // conservation: for each commodity j and node v:
    //   Σ_out x - Σ_in x = (v == src)·λd - (v == dst)·λd
    for (j, c) in commodities.iter().enumerate() {
        for v in 0..n {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            let (arcs, _) = net.out_slots(v);
            for &a in arcs {
                let a = a as usize;
                coeffs.push((var(j, a), 1.0));
                // the reverse arc of `a` is an in-arc of v
                coeffs.push((var(j, a ^ 1), -1.0));
            }
            if v == c.src {
                coeffs.push((lambda, -c.demand));
            } else if v == c.dst {
                coeffs.push((lambda, c.demand));
            }
            lp.add_eq(coeffs, 0.0);
        }
    }
    // capacity: Σ_j x[j][a] <= c(a)
    for a in 0..m {
        let coeffs: Vec<(usize, f64)> = (0..k).map(|j| (var(j, a), 1.0)).collect();
        lp.add_le(coeffs, net.capacity(a));
    }

    match lp
        .solve()
        .map_err(|e| FlowError::BadOptions(format!("LP solver failed: {e}")))?
    {
        LpOutcome::Optimal(s) => {
            let throughput = s.objective;
            let mut arc_flow = vec![0.0f64; m];
            for j in 0..k {
                for (a, f) in arc_flow.iter_mut().enumerate() {
                    *f += s.x[var(j, a)];
                }
            }
            let commodity_rate = commodities.iter().map(|c| throughput * c.demand).collect();
            let commodity_arc_flow = opts.record_commodity_flows.then(|| {
                (0..k)
                    .map(|j| (0..m).map(|a| s.x[var(j, a)]).collect())
                    .collect()
            });
            Ok(SolvedFlow {
                throughput,
                upper_bound: throughput,
                arc_flow,
                commodity_rate,
                phases: 1,
                settles: 0,
                commodity_arc_flow,
            })
        }
        LpOutcome::Infeasible => Err(FlowError::BadOptions(
            "exact LP infeasible (disconnected commodity?)".into(),
        )),
        LpOutcome::Unbounded => Err(FlowError::BadOptions(
            "exact LP unbounded (zero-demand commodity?)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_concurrent_flow;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_single_edge() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let v = exact_max_concurrent_flow(&g, &[Commodity::unit(0, 1)]).unwrap();
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exact_cycle_multipath() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let v = exact_max_concurrent_flow(&g, &[Commodity::unit(0, 2)]).unwrap();
        assert!((v - 2.0).abs() < 1e-6, "λ* = {v}");
    }

    #[test]
    fn exact_shared_bottleneck() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(1, 2).unwrap();
        let cs = [Commodity::unit(0, 2), Commodity::unit(1, 2)];
        let v = exact_max_concurrent_flow(&g, &cs).unwrap();
        assert!((v - 0.5).abs() < 1e-6, "λ* = {v}");
    }

    /// The recovered flow vector is feasible and ships λ·d per commodity.
    #[test]
    fn exact_flow_vector_feasible() {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let net = CsrNet::from_graph(&g);
        let cs = [Commodity::unit(0, 3), Commodity::unit(1, 4)];
        let s = exact_solved_flow(&net, &cs, &FlowOptions::default()).unwrap();
        assert_eq!(s.upper_bound, s.throughput);
        for a in 0..net.arc_count() {
            assert!(
                s.arc_flow[a] <= net.capacity(a) * (1.0 + 1e-6),
                "arc {a} over capacity"
            );
        }
        for (j, c) in cs.iter().enumerate() {
            assert!((s.commodity_rate[j] - s.throughput * c.demand).abs() < 1e-9);
        }
    }

    #[test]
    fn too_large_rejected() {
        let mut g = Graph::new(40);
        for u in 0..40 {
            for v in u + 1..40 {
                g.add_unit_edge(u, v).unwrap();
            }
        }
        let cs: Vec<_> = (0..20).map(|i| Commodity::unit(i, i + 20)).collect();
        assert!(matches!(
            exact_max_concurrent_flow(&g, &cs),
            Err(FlowError::BadOptions(_))
        ));
    }

    /// The central cross-validation: FPTAS within its certified gap of the
    /// exact LP optimum on random small instances.
    #[test]
    fn fptas_matches_exact_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        let opts = FlowOptions {
            epsilon: 0.05,
            target_gap: 0.02,
            max_phases: 30000,
            stall_phases: 3000,
            ..FlowOptions::default()
        };
        for trial in 0..6 {
            // random connected graph on 7 nodes: ring + random chords
            let n = 7;
            let mut g = Graph::new(n);
            for v in 0..n {
                g.add_unit_edge(v, (v + 1) % n).unwrap();
            }
            for _ in 0..4 {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
            let mut cs = Vec::new();
            while cs.len() < 3 {
                let s = rng.random_range(0..n);
                let t = rng.random_range(0..n);
                if s != t {
                    cs.push(Commodity::unit(s, t));
                }
            }
            let exact = exact_max_concurrent_flow(&g, &cs).unwrap();
            let approx = max_concurrent_flow(&g, &cs, &opts).unwrap();
            assert!(
                approx.throughput <= exact * (1.0 + 1e-6),
                "trial {trial}: primal {} exceeds exact {exact}",
                approx.throughput
            );
            assert!(
                approx.upper_bound >= exact * (1.0 - 1e-6),
                "trial {trial}: dual {} below exact {exact}",
                approx.upper_bound
            );
            assert!(
                approx.throughput >= exact * (1.0 - 0.03),
                "trial {trial}: primal {} too far below exact {exact}",
                approx.throughput
            );
        }
    }
}
