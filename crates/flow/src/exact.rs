//! Exact max concurrent flow via the edge-flow LP, solved with
//! `dctopo-linprog`'s simplex.
//!
//! Variables: `x[j][a]` (flow of commodity `j` on arc `a`) and `λ`.
//! Maximise `λ` subject to per-commodity flow conservation with source
//! surplus `λ·d_j` and joint arc capacities. This is the formulation the
//! paper hands to CPLEX; we use it as ground truth for the FPTAS on
//! instances small enough for a dense simplex (≲ 2,000 variables).

use dctopo_graph::Graph;
use dctopo_linprog::{LinearProgram, LpOutcome};

use crate::{validate, Commodity, FlowError, FlowOptions};

/// Upper bound on LP variables we are willing to hand the dense simplex.
const MAX_VARS: usize = 6_000;

/// Exact optimal concurrent throughput λ*, or an error if the instance is
/// too large / malformed.
pub fn exact_max_concurrent_flow(
    g: &Graph,
    commodities: &[Commodity],
) -> Result<f64, FlowError> {
    // validation shared with the FPTAS (options irrelevant; use defaults)
    validate(g, commodities, &FlowOptions::default())?;
    let k = commodities.len();
    let m = g.arc_count();
    let n = g.node_count();
    let num_vars = k * m + 1;
    if num_vars > MAX_VARS {
        return Err(FlowError::BadOptions(format!(
            "exact LP would need {num_vars} variables (limit {MAX_VARS}); use the FPTAS"
        )));
    }
    let lambda = k * m; // index of λ
    let mut lp = LinearProgram::new(num_vars);
    lp.set_objective(lambda, 1.0);

    let var = |j: usize, a: usize| j * m + a;

    // conservation: for each commodity j and node v:
    //   Σ_out x - Σ_in x = (v == src)·λd - (v == dst)·λd
    for (j, c) in commodities.iter().enumerate() {
        for v in 0..n {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for (a, _) in g.out_arcs(v) {
                coeffs.push((var(j, a), 1.0));
                // the reverse arc of `a` is an in-arc of v
                coeffs.push((var(j, a ^ 1), -1.0));
            }
            if v == c.src {
                coeffs.push((lambda, -c.demand));
                lp.add_eq(coeffs, 0.0);
            } else if v == c.dst {
                coeffs.push((lambda, c.demand));
                lp.add_eq(coeffs, 0.0);
            } else {
                lp.add_eq(coeffs, 0.0);
            }
        }
    }
    // capacity: Σ_j x[j][a] <= c(a)
    for a in 0..m {
        let coeffs: Vec<(usize, f64)> = (0..k).map(|j| (var(j, a), 1.0)).collect();
        lp.add_le(coeffs, g.arc_capacity(a));
    }

    match lp.solve().map_err(|e| FlowError::BadOptions(format!("LP solver failed: {e}")))? {
        LpOutcome::Optimal(s) => Ok(s.objective),
        LpOutcome::Infeasible => Err(FlowError::BadOptions(
            "exact LP infeasible (disconnected commodity?)".into(),
        )),
        LpOutcome::Unbounded => Err(FlowError::BadOptions(
            "exact LP unbounded (zero-demand commodity?)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_concurrent_flow;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_single_edge() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let v = exact_max_concurrent_flow(&g, &[Commodity::unit(0, 1)]).unwrap();
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exact_cycle_multipath() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let v = exact_max_concurrent_flow(&g, &[Commodity::unit(0, 2)]).unwrap();
        assert!((v - 2.0).abs() < 1e-6, "λ* = {v}");
    }

    #[test]
    fn exact_shared_bottleneck() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(1, 2).unwrap();
        let cs = [Commodity::unit(0, 2), Commodity::unit(1, 2)];
        let v = exact_max_concurrent_flow(&g, &cs).unwrap();
        assert!((v - 0.5).abs() < 1e-6, "λ* = {v}");
    }

    #[test]
    fn too_large_rejected() {
        let mut g = Graph::new(40);
        for u in 0..40 {
            for v in u + 1..40 {
                g.add_unit_edge(u, v).unwrap();
            }
        }
        let cs: Vec<_> = (0..20).map(|i| Commodity::unit(i, i + 20)).collect();
        assert!(matches!(
            exact_max_concurrent_flow(&g, &cs),
            Err(FlowError::BadOptions(_))
        ));
    }

    /// The central cross-validation: FPTAS within its certified gap of the
    /// exact LP optimum on random small instances.
    #[test]
    fn fptas_matches_exact_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        let opts = FlowOptions { epsilon: 0.05, target_gap: 0.02, max_phases: 30000, stall_phases: 3000 };
        for trial in 0..6 {
            // random connected graph on 7 nodes: ring + random chords
            let n = 7;
            let mut g = Graph::new(n);
            for v in 0..n {
                g.add_unit_edge(v, (v + 1) % n).unwrap();
            }
            for _ in 0..4 {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
            let mut cs = Vec::new();
            while cs.len() < 3 {
                let s = rng.random_range(0..n);
                let t = rng.random_range(0..n);
                if s != t {
                    cs.push(Commodity::unit(s, t));
                }
            }
            let exact = exact_max_concurrent_flow(&g, &cs).unwrap();
            let approx = max_concurrent_flow(&g, &cs, &opts).unwrap();
            assert!(
                approx.throughput <= exact * (1.0 + 1e-6),
                "trial {trial}: primal {} exceeds exact {exact}",
                approx.throughput
            );
            assert!(
                approx.upper_bound >= exact * (1.0 - 1e-6),
                "trial {trial}: dual {} below exact {exact}",
                approx.upper_bound
            );
            assert!(
                approx.throughput >= exact * (1.0 - 0.03),
                "trial {trial}: primal {} too far below exact {exact}",
                approx.throughput
            );
        }
    }
}
