//! The original direct-[`Graph`] FPTAS, kept as a reference baseline.
//!
//! This is the pre-CSR implementation: single-threaded, nested-adjacency
//! Dijkstra (via [`dctopo_graph::paths::dijkstra`]), one shortest-path
//! recomputation per inner augmentation step. The production path is
//! [`crate::Fptas`] over [`dctopo_graph::CsrNet`]; this module exists so
//! that
//!
//! 1. criterion benches can quantify the CSR engine's speedup against an
//!    unchanged baseline, and
//! 2. cross-validation tests have a third, independently-implemented
//!    solver to agree with.
//!
//! Algorithm notes are in [`crate::max_concurrent_flow_csr`]; the two implementations share
//! the same certificates (feasible scaled primal, `D(l)/α(l)` dual).

use dctopo_graph::paths::dijkstra;
use dctopo_graph::{Graph, NodeId};

use crate::{validate, Commodity, FlowError, FlowOptions, SolvedFlow};

/// Commodities grouped by source for shared Dijkstra runs.
struct SourceGroup {
    src: NodeId,
    /// (commodity index, dst, demand)
    sinks: Vec<(usize, NodeId, f64)>,
}

fn group_by_source(commodities: &[Commodity]) -> Vec<SourceGroup> {
    let mut groups: Vec<SourceGroup> = Vec::new();
    // stable grouping that preserves first-seen source order
    for (i, c) in commodities.iter().enumerate() {
        match groups.iter_mut().find(|g| g.src == c.src) {
            Some(g) => g.sinks.push((i, c.dst, c.demand)),
            None => groups.push(SourceGroup {
                src: c.src,
                sinks: vec![(i, c.dst, c.demand)],
            }),
        }
    }
    groups
}

/// Solve max concurrent flow on `g` with the legacy Graph-based FPTAS.
///
/// Semantics and certificates match [`crate::max_concurrent_flow`]; only
/// the execution strategy differs (no CSR, no parallelism, shortest
/// paths recomputed inside the augmentation loop).
///
/// # Errors
/// As [`crate::max_concurrent_flow`].
pub fn max_concurrent_flow_graph(
    g: &Graph,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    validate(g.node_count(), commodities, opts)?;
    let num_arcs = g.arc_count();
    if num_arcs == 0 {
        // commodities exist but there are no edges at all
        let c = &commodities[0];
        return Err(FlowError::Unreachable {
            src: c.src,
            dst: c.dst,
        });
    }
    let eps = opts.epsilon;
    let groups = group_by_source(commodities);

    // lengths l(a) = 1/c(a) initially
    let mut length: Vec<f64> = (0..num_arcs).map(|a| 1.0 / g.arc_capacity(a)).collect();
    // raw (pre-scaling) accumulated flow
    let mut arc_flow = vec![0.0f64; num_arcs];
    let mut routed = vec![0.0f64; commodities.len()];

    // The dual bound D(l)/α(l) is invariant under uniform scaling of all
    // lengths, and so are shortest paths — so we rescale whenever lengths
    // grow large to avoid overflow corrupting the bound.
    const RESCALE_ABOVE: f64 = 1e100;

    // reachability check up front (also seeds the first dual bound)
    let mut best_dual = f64::INFINITY;
    {
        let d_l = total_weighted_length(g, &length);
        let alpha = alpha_of(g, &groups, &length)?;
        let bound = d_l / alpha;
        if bound.is_finite() {
            best_dual = best_dual.min(bound);
        }
    }
    // evaluate the dual every few phases (it changes slowly and costs a
    // Dijkstra per source group)
    let dual_every = 8usize;
    // plateau detection: stop when the primal stops improving materially
    let mut last_primal_check = 0.0f64;
    let mut stagnant_phases = 0usize;

    let mut best: Option<SolvedFlow> = None;
    let mut phases = 0usize;
    // scratch buffers reused across iterations
    let mut tree_load = vec![0.0f64; num_arcs];
    let mut touched: Vec<usize> = Vec::new();

    while phases < opts.max_phases {
        phases += 1;
        for group in &groups {
            // remaining demand to route for this group's sinks this phase
            let mut remaining: Vec<f64> = group.sinks.iter().map(|&(_, _, d)| d).collect();
            let mut inner = 0usize;
            // route until the group's phase demand is (essentially) done
            while remaining.iter().any(|&r| r > 1e-12) {
                inner += 1;
                if inner > 64 {
                    // Extremely skewed instances can shrink τ repeatedly;
                    // carry the leftover to the next phase (correctness is
                    // unaffected — `routed` only counts what was sent).
                    break;
                }
                let tree = dijkstra(g, group.src, &length);
                // accumulate load if all remaining demand were routed
                touched.clear();
                for (k, &(_, dst, _)) in group.sinks.iter().enumerate() {
                    let r = remaining[k];
                    if r <= 1e-12 {
                        continue;
                    }
                    if !tree.dist[dst].is_finite() {
                        return Err(FlowError::Unreachable {
                            src: group.src,
                            dst,
                        });
                    }
                    let mut v = dst;
                    while let Some(a) = tree.parent_arc[v] {
                        if tree_load[a] == 0.0 {
                            touched.push(a);
                        }
                        tree_load[a] += r;
                        v = g.arc_tail(a);
                    }
                }
                // capacity-scaled step: never send more than c(a) on any arc
                let mut tau = 1.0f64;
                for &a in &touched {
                    tau = tau.min(g.arc_capacity(a) / tree_load[a]);
                }
                // send τ·remaining along the tree, update lengths
                for &a in &touched {
                    let sent = tau * tree_load[a];
                    arc_flow[a] += sent;
                    length[a] *= 1.0 + eps * (sent / g.arc_capacity(a));
                    tree_load[a] = 0.0;
                }
                touched.clear();
                for (k, &(j, _, _)) in group.sinks.iter().enumerate() {
                    let sent = tau * remaining[k];
                    routed[j] += sent;
                    remaining[k] -= sent;
                }
                if tau >= 1.0 {
                    break;
                }
            }
        }

        // rescale lengths when they get large (scale-invariant)
        let max_len = length.iter().copied().fold(0.0f64, f64::max);
        if max_len > RESCALE_ABOVE {
            let inv = 1.0 / max_len;
            for l in length.iter_mut() {
                *l *= inv;
            }
        }

        // certified primal: scale by max congestion
        let mu = arc_flow
            .iter()
            .enumerate()
            .map(|(a, &f)| f / g.arc_capacity(a))
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let primal = commodities
            .iter()
            .enumerate()
            .map(|(j, c)| routed[j] / (mu * c.demand))
            .fold(f64::INFINITY, f64::min);

        // certified dual: D(l)/α(l) at current lengths, every few phases
        if phases.is_multiple_of(dual_every) || phases == opts.max_phases {
            let d_l = total_weighted_length(g, &length);
            let alpha = alpha_of(g, &groups, &length)?;
            let bound = d_l / alpha;
            if bound.is_finite() && bound > 0.0 {
                best_dual = best_dual.min(bound);
            }
        }

        let make_solution = |primal: f64, mu: f64, phases: usize| SolvedFlow {
            throughput: primal,
            upper_bound: best_dual,
            arc_flow: arc_flow.iter().map(|&f| f / mu).collect(),
            commodity_rate: routed.iter().map(|&r| r / mu).collect(),
            phases,
            settles: 0,
            // the baseline stays un-instrumented by design
            commodity_arc_flow: None,
        };

        let better = best.as_ref().is_none_or(|b| primal > b.throughput);
        if better {
            best = Some(make_solution(primal, mu, phases));
        }
        if primal >= (1.0 - opts.target_gap) * best_dual {
            break;
        }
        // plateau stop: the primal is certified-feasible regardless; when
        // it stops improving the remaining gap is dual-side looseness
        if primal > last_primal_check * 1.0005 {
            last_primal_check = primal;
            stagnant_phases = 0;
        } else {
            stagnant_phases += 1;
            if stagnant_phases >= opts.stall_phases {
                break;
            }
        }
    }

    let mut sol = best.expect("at least one phase ran");
    sol.upper_bound = best_dual;
    sol.phases = phases;
    Ok(sol)
}

/// `D(l) = Σ_a c(a) · l(a)`.
fn total_weighted_length(g: &Graph, length: &[f64]) -> f64 {
    length
        .iter()
        .enumerate()
        .map(|(a, &l)| g.arc_capacity(a) * l)
        .sum()
}

/// `α(l) = Σ_j d_j · dist_l(s_j, t_j)`, grouped by source.
fn alpha_of(g: &Graph, groups: &[SourceGroup], length: &[f64]) -> Result<f64, FlowError> {
    let mut alpha = 0.0;
    for group in groups {
        let tree = dijkstra(g, group.src, length);
        for &(_, dst, demand) in &group.sinks {
            let d = tree.dist[dst];
            if !d.is_finite() {
                return Err(FlowError::Unreachable {
                    src: group.src,
                    dst,
                });
            }
            alpha += demand * d;
        }
    }
    Ok(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_concurrent_flow;

    fn opts() -> FlowOptions {
        FlowOptions {
            epsilon: 0.05,
            target_gap: 0.02,
            max_phases: 20000,
            stall_phases: 2000,
            ..FlowOptions::default()
        }
    }

    /// The baseline still solves the canonical instances.
    #[test]
    fn reference_solves_cycle() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let s = max_concurrent_flow_graph(&g, &[Commodity::unit(0, 2)], &opts()).unwrap();
        assert!((s.throughput - 2.0).abs() < 0.06, "λ = {}", s.throughput);
        assert!(s.upper_bound >= s.throughput);
    }

    /// Baseline and CSR engine certify overlapping optimality intervals.
    #[test]
    fn reference_and_csr_agree() {
        let mut g = Graph::new(7);
        for v in 0..7 {
            g.add_unit_edge(v, (v + 1) % 7).unwrap();
        }
        g.add_unit_edge(0, 3).unwrap();
        g.add_unit_edge(2, 5).unwrap();
        let cs = [
            Commodity::unit(0, 4),
            Commodity::unit(1, 5),
            Commodity {
                src: 6,
                dst: 2,
                demand: 2.0,
            },
        ];
        let a = max_concurrent_flow_graph(&g, &cs, &opts()).unwrap();
        let b = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        // both primal values lie under both dual bounds
        assert!(a.throughput <= b.upper_bound * (1.0 + 1e-9));
        assert!(b.throughput <= a.upper_bound * (1.0 + 1e-9));
        // and the certified intervals pin the same optimum to within gaps
        assert!((a.throughput - b.throughput).abs() <= 0.05 * a.throughput.max(b.throughput));
    }

    #[test]
    fn reference_unreachable_errors() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let r = max_concurrent_flow_graph(&g, &[Commodity::unit(0, 3)], &opts());
        assert!(matches!(r, Err(FlowError::Unreachable { src: 0, dst: 3 })));
    }
}
