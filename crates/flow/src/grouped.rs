//! Aggregated-demand max concurrent flow: `O(arcs + active pairs)`
//! memory instead of the pairwise formulation's `O(n²)` commodities.
//!
//! The pairwise solver ([`crate::max_concurrent_flow_csr`]) keeps one
//! [`DijkstraWorkspace`] **per source group** plus a `(src, dst,
//! demand)` triple per commodity. For an all-to-all matrix on an
//! `n`-switch fabric that is `Θ(n²)` state before the first phase runs
//! — the reason ≥1024-switch dense instances OOM'd rather than merely
//! being slow. This module replaces the commodity *list* with demand
//! *descriptors*:
//!
//! * [`SinkSpec::List`] — an explicit `(dst, demand)` list, for sparse
//!   groups (memory: the pairs that actually exist).
//! * [`SinkSpec::Weighted`] — "this source sends `scale · weights[v]`
//!   to every switch `v ≠ src`", with the weight vector shared across
//!   all groups behind an [`Arc`]. An all-to-all fabric is `n` groups
//!   sharing **one** `O(n)` vector: total demand state `O(n)`, not
//!   `O(n²)`.
//!
//! ## The tree-aggregated Garg–Könemann step
//!
//! The pairwise solver already routes a source group's commodities down
//! one shortest-path tree per step, but it materialises per-sink
//! `remaining` vectors and walks each sink's path individually. Here
//! the whole group advances **proportionally**: each step routes the
//! same fraction `τ` of every sink's remaining demand, so the only
//! per-group routing state is a single scalar (`frac_remaining`).
//! Subtree loads come from one leaf-up Kahn pass over the parent
//! forest — each node pushes its accumulated demand onto its parent
//! arc once all its tree children have pushed onto it — which costs
//! `O(n + arcs)` per step independent of how many sinks the group has:
//!
//! 1. build the tree under current lengths (`fptas::full_tree`:
//!    bucketed parallel SSSP at scale, scalar Dijkstra below the gate);
//! 2. `L(a)` = demand in the subtree hanging under arc `a`;
//! 3. `τ = min(1, min_a c(a)/L(a))` — the capacity-scaled step;
//! 4. `flow(a) += τ·L(a)`, `l(a) *= 1 + ε·τ·L(a)/c(a)`,
//!    `frac_remaining *= 1 − τ`.
//!
//! Because every sink of a group routes the *same* cumulative fraction
//! of its demand, the per-sink rates collapse to one factor per group
//! ([`GroupedFlow::group_rate_factor`]): `rate(dst) = factor ·
//! demand(dst)`. The certified primal is `λ = min_g factor_g` after
//! scaling by the worst congestion, exactly the pairwise `min_j
//! routed_j / (μ·d_j)` specialised to proportional routing.
//!
//! ## Certification
//!
//! The dual bound is the usual `D(l)/α(l)` with `α(l) = Σ_j d_j ·
//! dist_l(s_j, t_j)`. `α` is harvested from the **first** tree each
//! group builds in a phase (a free by-product — no extra SSSP pass),
//! while `D(l)` is summed at phase end. Lengths only grow within a
//! phase, so each harvested distance is ≤ its value under the
//! phase-end lengths, hence `D(l_end)/α_harvest ≥ D(l_end)/α(l_end) ≥
//! λ*`: still a valid (slightly looser) certificate. Rescaling runs
//! *after* the bound is taken so the growth argument is never violated.
//! After the phase loop a **final exact harvest** — one SSSP per group
//! at the terminal lengths — evaluates `D(l)` and `α(l)` at the *same*
//! `l` (a valid bound for any positive length function by LP duality)
//! and usually tightens the interval by an order of magnitude for
//! `O(groups)` extra SSSPs total.
//!
//! ## Determinism
//!
//! Groups route sequentially in input order; the leaf-up Kahn pass
//! seeds its ready stack in node-index order, so its visit sequence —
//! and therefore every float accumulation order — is a pure function
//! of the parent forest; sink iteration is input order
//! (`List`) or index order (`Weighted`); the tree builds are
//! [`dctopo_graph::delta`] (bit-identical at any thread count) or
//! scalar Dijkstra. The whole solve is therefore **bit-identical
//! across thread counts and reruns**, same as the pairwise paths.

use std::sync::Arc;

use dctopo_graph::{CsrNet, DijkstraWorkspace, NodeId};
use dctopo_obs as obs;

use crate::fptas;
use crate::trace::with_delta_stats;
use crate::{FlowError, FlowOptions};

/// Where lengths get rescaled (mirrors the pairwise solver).
const RESCALE_ABOVE: f64 = 1e100;

/// The sinks of one [`DemandGroup`].
#[derive(Debug, Clone)]
pub enum SinkSpec {
    /// Explicit `(dst, demand)` pairs. Memory: `O(pairs)`.
    List(Vec<(NodeId, f64)>),
    /// Demand `scale · weights[v]` to every node `v` with
    /// `weights[v] > 0`, **skipping `v == src`** (same-switch traffic
    /// never enters the network). The weight vector is `Arc`-shared so
    /// `n` groups over the same population cost `O(n)` total, not
    /// `O(n²)`.
    Weighted {
        /// Per-node sink weights (length = node count; zero = no sink).
        weights: Arc<Vec<f64>>,
        /// Multiplier applied to every weight (e.g. servers at the
        /// source switch for switch-level all-to-all).
        scale: f64,
    },
}

/// One source and its aggregated sinks — the grouped analogue of a run
/// of [`crate::Commodity`] entries sharing a `src`.
#[derive(Debug, Clone)]
pub struct DemandGroup {
    /// Source node.
    pub src: NodeId,
    /// Aggregated destinations.
    pub sinks: SinkSpec,
}

impl DemandGroup {
    /// All-to-all from `src`: demand `scale · weights[v]` to every
    /// other node with positive weight.
    pub fn weighted(src: NodeId, weights: Arc<Vec<f64>>, scale: f64) -> Self {
        DemandGroup {
            src,
            sinks: SinkSpec::Weighted { weights, scale },
        }
    }

    /// Visit every `(dst, demand)` sink in deterministic order (input
    /// order for [`SinkSpec::List`], node-index order for
    /// [`SinkSpec::Weighted`]; weighted specs skip `src` and zero
    /// weights).
    pub fn for_each_sink(&self, mut f: impl FnMut(NodeId, f64)) {
        match &self.sinks {
            SinkSpec::List(pairs) => {
                for &(dst, d) in pairs {
                    f(dst, d);
                }
            }
            SinkSpec::Weighted { weights, scale } => {
                for (v, &w) in weights.iter().enumerate() {
                    if v != self.src && w > 0.0 {
                        f(v, scale * w);
                    }
                }
            }
        }
    }

    /// Total demand out of this group's source.
    pub fn total_demand(&self) -> f64 {
        let mut t = 0.0;
        self.for_each_sink(|_, d| t += d);
        t
    }

    /// Number of `(src, dst)` pairs this group aggregates.
    pub fn sink_count(&self) -> usize {
        let mut k = 0usize;
        self.for_each_sink(|_, _| k += 1);
        k
    }
}

/// Result of [`solve_grouped`]: the grouped analogue of
/// [`crate::SolvedFlow`], with per-**group** rate factors instead of a
/// per-commodity rate vector (the whole point is not materialising one
/// number per pair).
#[derive(Debug, Clone)]
pub struct GroupedFlow {
    /// Feasible concurrent throughput λ: every sink of every group
    /// simultaneously receives ≥ `λ · demand`.
    pub throughput: f64,
    /// Certified upper bound on the optimum (`D(l)/α(l)` harvested
    /// from the phase trees).
    pub upper_bound: f64,
    /// Feasible per-arc flow (scaled to respect every capacity).
    pub arc_flow: Vec<f64>,
    /// Per-group rate factor: sink `dst` of group `g` receives
    /// `group_rate_factor[g] · demand(dst)`. `throughput` is the
    /// minimum entry.
    pub group_rate_factor: Vec<f64>,
    /// Phases executed.
    pub phases: usize,
    /// Total shortest-path tree settles (work metric).
    pub settles: u64,
}

impl GroupedFlow {
    /// Relative certified optimality gap `(upper − λ)/upper`.
    pub fn gap(&self) -> f64 {
        if self.upper_bound <= 0.0 {
            return 0.0;
        }
        (self.upper_bound - self.throughput) / self.upper_bound
    }
}

fn validate_grouped(
    node_count: usize,
    groups: &[DemandGroup],
    opts: &FlowOptions,
) -> Result<(), FlowError> {
    if groups.is_empty() {
        return Err(FlowError::NoCommodities);
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(FlowError::BadOptions(format!(
            "epsilon must be in (0, 1), got {}",
            opts.epsilon
        )));
    }
    if !(opts.target_gap > 0.0 && opts.target_gap < 1.0) {
        return Err(FlowError::BadOptions(format!(
            "target_gap must be in (0, 1), got {}",
            opts.target_gap
        )));
    }
    if opts.max_phases == 0 {
        return Err(FlowError::BadOptions("max_phases must be > 0".into()));
    }
    for (gi, g) in groups.iter().enumerate() {
        if g.src >= node_count {
            return Err(FlowError::BadOptions(format!(
                "group {gi}: src {} out of range (n = {node_count})",
                g.src
            )));
        }
        match &g.sinks {
            SinkSpec::List(pairs) => {
                for &(dst, d) in pairs {
                    if dst >= node_count {
                        return Err(FlowError::BadOptions(format!(
                            "group {gi}: dst {dst} out of range (n = {node_count})"
                        )));
                    }
                    if dst == g.src {
                        return Err(FlowError::SelfCommodity { index: gi });
                    }
                    if !(d.is_finite() && d > 0.0) {
                        return Err(FlowError::BadDemand {
                            index: gi,
                            demand: d,
                        });
                    }
                }
            }
            SinkSpec::Weighted { weights, scale } => {
                if weights.len() != node_count {
                    return Err(FlowError::BadOptions(format!(
                        "group {gi}: weight vector has {} entries, net has {node_count} nodes",
                        weights.len()
                    )));
                }
                if !(scale.is_finite() && *scale > 0.0) {
                    return Err(FlowError::BadDemand {
                        index: gi,
                        demand: *scale,
                    });
                }
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    return Err(FlowError::BadOptions(format!(
                        "group {gi}: weights must be finite and non-negative"
                    )));
                }
            }
        }
        if g.sink_count() == 0 {
            return Err(FlowError::BadDemand {
                index: gi,
                demand: 0.0,
            });
        }
    }
    Ok(())
}

/// Solve max concurrent flow for aggregated demand groups.
///
/// Same guarantees as [`crate::max_concurrent_flow_csr`] — feasible
/// `throughput`, certified `upper_bound`, bit-identical across thread
/// counts — with working memory `O(arcs + nodes + active pairs)`
/// instead of `O(n²)`. See the module docs for the algorithm.
///
/// # Errors
///
/// * [`FlowError::Unreachable`] if any group has a positive-demand
///   sink outside its source's component.
/// * Validation errors for empty/invalid inputs (see [`FlowError`]).
pub fn solve_grouped(
    net: &CsrNet,
    groups: &[DemandGroup],
    opts: &FlowOptions,
) -> Result<GroupedFlow, FlowError> {
    validate_grouped(net.node_count(), groups, opts)?;
    if net.arc_count() == 0 {
        let mut first = None;
        groups[0].for_each_sink(|dst, _| first = first.or(Some(dst)));
        return Err(FlowError::Unreachable {
            src: groups[0].src,
            dst: first.expect("validated: at least one sink"),
        });
    }

    let n = net.node_count();
    let num_arcs = net.arc_count();
    let eps = opts.epsilon;

    // lengths l(a) = 1/c(a) initially, as in the pairwise solver
    let mut length: Vec<f64> = net.inv_capacities().to_vec();
    let mut arc_flow = vec![0.0f64; num_arcs];
    // cumulative fraction of each group's demand that has been routed
    // (unscaled): sink dst of group g has received routed_frac[g]·d(dst)
    let mut routed_frac = vec![0.0f64; groups.len()];

    // ONE shared workspace — the memory story. Groups route
    // sequentially, so warm per-group trees are traded for O(n) state.
    let mut ws = DijkstraWorkspace::default();
    // leaf-up sweep scratch
    let mut node_demand = vec![0.0f64; n];
    let mut child_count = vec![0u32; n];
    let mut ready: Vec<u32> = Vec::with_capacity(n);
    let mut tree_load = vec![0.0f64; num_arcs];
    let mut touched: Vec<usize> = Vec::new();

    let mut best_dual = f64::INFINITY;
    let mut best: Option<GroupedFlow> = None;
    let mut last_primal_check = 0.0f64;
    let mut stagnant_phases = 0usize;
    let mut phases = 0usize;

    while phases < opts.max_phases {
        phases += 1;
        let t_phase = obs::clock();
        // per-phase telemetry: routing steps (= trees built) plus
        // tree-build and Kahn-pass wall time (nd; zero when disabled —
        // `obs::clock()` never touches the clock then)
        let mut ph_steps = 0u64;
        let mut tree_us = 0u64;
        let mut kahn_us = 0u64;
        // α(l) harvested from each group's first tree of the phase
        let mut alpha_phase = 0.0f64;

        for (gi, g) in groups.iter().enumerate() {
            let mut frac_remaining = 1.0f64;
            let mut inner = 0usize;
            while frac_remaining > 1e-12 {
                inner += 1;
                if inner > 64 {
                    // skewed instances can shrink τ repeatedly; carry
                    // the leftover — `routed_frac` only counts what was
                    // actually sent, so correctness is unaffected
                    break;
                }
                ph_steps += 1;
                let t_tree = obs::clock();
                fptas::full_tree(net, g.src, &length, &mut ws);
                tree_us += obs::us_since(t_tree);

                // seed the per-node sink demand for this step and check
                // reachability; harvest α from the phase's first tree
                let mut unreachable: Option<NodeId> = None;
                let mut alpha_g = 0.0f64;
                g.for_each_sink(|dst, d| {
                    let dist = ws.distance(dst);
                    if !dist.is_finite() {
                        unreachable = unreachable.or(Some(dst));
                        return;
                    }
                    node_demand[dst] += frac_remaining * d;
                    if inner == 1 {
                        alpha_g += d * dist;
                    }
                });
                if let Some(dst) = unreachable {
                    return Err(FlowError::Unreachable { src: g.src, dst });
                }
                if inner == 1 {
                    alpha_phase += alpha_g;
                }

                // Leaf-up subtree loads via a Kahn pass over the parent
                // forest: each node pushes its accumulated demand onto
                // its parent arc once all its tree children have pushed
                // onto it, so L(a) = demand below a in O(n + arcs).
                // Deliberately NOT a decreasing-distance sort: at large
                // length magnitudes float absorption can make a child's
                // distance *equal* its parent's, and any dist-ordered
                // sweep may then visit the parent first and strand the
                // child's load — silently under-recording arc flow that
                // `routed_frac` still takes credit for. The parent
                // pointers themselves are always a well-founded forest.
                let t_kahn = obs::clock();
                for c in child_count.iter_mut() {
                    *c = 0;
                }
                for v in 0..n {
                    if let Some(a) = ws.parent(v) {
                        child_count[net.arc_tail(a)] += 1;
                    }
                }
                ready.clear();
                ready.extend((0..n as u32).filter(|&v| {
                    child_count[v as usize] == 0 && ws.distance(v as usize).is_finite()
                }));
                touched.clear();
                while let Some(vu) = ready.pop() {
                    let v = vu as usize;
                    let load = node_demand[v];
                    node_demand[v] = 0.0;
                    // the root absorbs everything pushed up to it
                    let Some(a) = ws.parent(v) else { continue };
                    if load > 0.0 {
                        if tree_load[a] == 0.0 {
                            touched.push(a);
                        }
                        tree_load[a] += load;
                        node_demand[net.arc_tail(a)] += load;
                    }
                    let t = net.arc_tail(a);
                    child_count[t] -= 1;
                    if child_count[t] == 0 {
                        ready.push(t as u32);
                    }
                }
                kahn_us += obs::us_since(t_kahn);

                // capacity-scaled step: never overload any arc
                let mut tau = 1.0f64;
                for &a in &touched {
                    tau = tau.min(net.capacity(a) / tree_load[a]);
                }
                for &a in &touched {
                    let sent = tau * tree_load[a];
                    arc_flow[a] += sent;
                    length[a] *= 1.0 + eps * (sent / net.capacity(a));
                    tree_load[a] = 0.0;
                }
                routed_frac[gi] += tau * frac_remaining;
                frac_remaining -= tau * frac_remaining;
                if tau >= 1.0 {
                    break;
                }
            }
        }

        // dual BEFORE rescale: α was harvested under in-phase lengths,
        // which only grew since — D(l_end)/α_harvest ≥ D(l_end)/α(l_end)
        // ≥ λ*, a valid certificate (module docs)
        let d_l: f64 = length
            .iter()
            .zip(net.capacities())
            .map(|(&l, &c)| l * c)
            .sum();
        let bound = d_l / alpha_phase;
        if bound.is_finite() && bound > 0.0 {
            best_dual = best_dual.min(bound);
        }

        let max_len = length.iter().copied().fold(0.0f64, f64::max);
        if max_len > RESCALE_ABOVE {
            let inv = 1.0 / max_len;
            for l in length.iter_mut() {
                *l *= inv;
            }
        }

        // certified primal: scale by worst congestion
        let mu = arc_flow
            .iter()
            .zip(net.capacities())
            .map(|(&f, &c)| f / c)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let primal = routed_frac.iter().copied().fold(f64::INFINITY, f64::min) / mu;

        // groups route sequentially, so this sits outside any parallel
        // region and the event sequence is deterministic per solve
        if obs::enabled() {
            obs::Event::new("grouped_phase")
                .field("phase", phases as u64)
                .field("steps", ph_steps)
                .field("alpha", alpha_phase)
                .field("d_l", d_l)
                .field("primal", primal)
                .field("dual", best_dual)
                .field("settles", ws.settles())
                .nd("tree_us", tree_us)
                .nd("kahn_us", kahn_us)
                .nd("wall_us", obs::us_since(t_phase))
                .emit();
        }

        let better = best.as_ref().is_none_or(|b| primal > b.throughput);
        if better {
            best = Some(GroupedFlow {
                throughput: primal,
                upper_bound: best_dual,
                arc_flow: arc_flow.iter().map(|&f| f / mu).collect(),
                group_rate_factor: routed_frac.iter().map(|&r| r / mu).collect(),
                phases,
                settles: 0,
            });
        }
        if primal >= (1.0 - opts.target_gap) * best_dual {
            break;
        }
        if primal > last_primal_check * 1.0005 {
            last_primal_check = primal;
            stagnant_phases = 0;
        } else {
            stagnant_phases += 1;
            if stagnant_phases >= opts.stall_phases {
                break;
            }
        }
    }

    // Final exact certificate: one SSSP per group at the terminal
    // lengths evaluates α(l) and D(l) at the SAME l, which bounds λ*
    // for any positive length function by LP duality. The in-loop
    // mixed-age bound loosens as lengths grow within a phase; the
    // terminal lengths are the most congestion-aware of the run and
    // this single extra harvest usually tightens the interval by an
    // order of magnitude for O(groups) SSSPs total.
    let t_harvest = obs::clock();
    let mut alpha_final = 0.0f64;
    for g in groups {
        fptas::full_tree(net, g.src, &length, &mut ws);
        g.for_each_sink(|dst, d| {
            let dist = ws.distance(dst);
            if dist.is_finite() {
                alpha_final += d * dist;
            }
        });
    }
    let d_final: f64 = length
        .iter()
        .zip(net.capacities())
        .map(|(&l, &c)| l * c)
        .sum();
    let final_bound = d_final / alpha_final;
    if final_bound.is_finite() && final_bound > 0.0 {
        best_dual = best_dual.min(final_bound);
    }
    if obs::enabled() {
        obs::Event::new("grouped_harvest")
            .field("alpha", alpha_final)
            .field("d_l", d_final)
            .field("bound", final_bound)
            .nd("wall_us", obs::us_since(t_harvest))
            .emit();
    }

    let mut sol = best.expect("at least one phase ran");
    sol.upper_bound = best_dual;
    sol.phases = phases;
    sol.settles = ws.settles();
    if obs::enabled() {
        with_delta_stats(
            obs::Event::new("grouped_solve")
                .field("groups", groups.len())
                .field("phases", phases as u64)
                .field("settles", sol.settles)
                .field("lambda", sol.throughput)
                .field("upper_bound", sol.upper_bound),
            ws.delta_stats(),
        )
        .emit();
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_concurrent_flow_csr, Commodity};
    use dctopo_graph::Graph;

    fn ring(n: usize, cap: f64) -> CsrNet {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, cap).unwrap();
        }
        CsrNet::from_graph(&g)
    }

    fn opts() -> FlowOptions {
        FlowOptions {
            epsilon: 0.05,
            target_gap: 0.02,
            max_phases: 20000,
            stall_phases: 2000,
            ..FlowOptions::default()
        }
    }

    fn pairwise_of(groups: &[DemandGroup]) -> Vec<Commodity> {
        let mut cs = Vec::new();
        for g in groups {
            g.for_each_sink(|dst, demand| {
                cs.push(Commodity {
                    src: g.src,
                    dst,
                    demand,
                })
            });
        }
        cs
    }

    /// Certified intervals of the grouped and pairwise formulations of
    /// the same instance must overlap: each λ is feasible, so it can't
    /// exceed the other's certified upper bound.
    fn assert_intervals_overlap(net: &CsrNet, groups: &[DemandGroup]) {
        let o = opts();
        let grouped = solve_grouped(net, groups, &o).unwrap();
        let pairwise = max_concurrent_flow_csr(net, &pairwise_of(groups), &o).unwrap();
        assert!(
            grouped.throughput <= pairwise.upper_bound * (1.0 + 1e-9),
            "grouped λ {} exceeds pairwise bound {}",
            grouped.throughput,
            pairwise.upper_bound
        );
        assert!(
            pairwise.throughput <= grouped.upper_bound * (1.0 + 1e-9),
            "pairwise λ {} exceeds grouped bound {}",
            pairwise.throughput,
            grouped.upper_bound
        );
        assert!(
            grouped.gap() <= o.target_gap + 0.25,
            "gap {}",
            grouped.gap()
        );
    }

    #[test]
    fn single_pair_matches_capacity() {
        // two parallel 2-hop routes of capacity 1 ⇒ max flow 2
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let net = CsrNet::from_graph(&g);
        let groups = [DemandGroup {
            src: 0,
            sinks: SinkSpec::List(vec![(3, 1.0)]),
        }];
        let s = solve_grouped(&net, &groups, &opts()).unwrap();
        assert!(s.throughput > 1.9, "λ = {}", s.throughput);
        assert!(s.upper_bound >= s.throughput);
        assert!(s.upper_bound <= 2.0 / (1.0 - 0.05) + 1e-9);
        assert_eq!(s.group_rate_factor.len(), 1);
        assert!((s.group_rate_factor[0] - s.throughput).abs() < 1e-12);
        assert!(s.settles > 0);
    }

    #[test]
    fn grouped_interval_overlaps_pairwise_on_ring() {
        let net = ring(8, 1.0);
        let groups: Vec<DemandGroup> = (0..4)
            .map(|s| DemandGroup {
                src: s,
                sinks: SinkSpec::List(vec![((s + 3) % 8, 1.0), ((s + 4) % 8, 0.5)]),
            })
            .collect();
        assert_intervals_overlap(&net, &groups);
    }

    #[test]
    fn weighted_all_to_all_interval_overlaps_pairwise() {
        let net = ring(6, 2.0);
        let weights = Arc::new(vec![1.0; 6]);
        let groups: Vec<DemandGroup> = (0..6)
            .map(|s| DemandGroup::weighted(s, Arc::clone(&weights), 1.0))
            .collect();
        assert_intervals_overlap(&net, &groups);
    }

    #[test]
    fn weighted_matches_equivalent_list_bitwise() {
        let net = ring(6, 1.0);
        let weights = Arc::new(vec![0.0, 2.0, 0.0, 1.0, 0.5, 0.0]);
        let as_weighted = [DemandGroup::weighted(0, weights, 3.0)];
        let as_list = [DemandGroup {
            src: 0,
            sinks: SinkSpec::List(vec![(1, 6.0), (3, 3.0), (4, 1.5)]),
        }];
        let a = solve_grouped(&net, &as_weighted, &opts()).unwrap();
        let b = solve_grouped(&net, &as_list, &opts()).unwrap();
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        assert_eq!(a.phases, b.phases);
        for (x, y) in a.arc_flow.iter().zip(&b.arc_flow) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn weighted_skips_own_source() {
        let weights = Arc::new(vec![1.0; 4]);
        let g = DemandGroup::weighted(2, Arc::clone(&weights), 1.0);
        assert_eq!(g.sink_count(), 3);
        assert_eq!(g.total_demand(), 3.0);
        let mut sinks = Vec::new();
        g.for_each_sink(|dst, _| sinks.push(dst));
        assert_eq!(sinks, vec![0, 1, 3]);
    }

    #[test]
    fn unreachable_sink_is_reported() {
        // 0–1 connected, 2 isolated
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0).unwrap();
        let net = CsrNet::from_graph(&g);
        let groups = [DemandGroup {
            src: 0,
            sinks: SinkSpec::List(vec![(1, 1.0), (2, 1.0)]),
        }];
        let err = solve_grouped(&net, &groups, &opts()).unwrap_err();
        assert!(matches!(err, FlowError::Unreachable { src: 0, dst: 2 }));
    }

    #[test]
    fn validation_rejects_bad_groups() {
        let net = ring(4, 1.0);
        let o = opts();
        assert!(matches!(
            solve_grouped(&net, &[], &o),
            Err(FlowError::NoCommodities)
        ));
        let selfc = [DemandGroup {
            src: 1,
            sinks: SinkSpec::List(vec![(1, 1.0)]),
        }];
        assert!(matches!(
            solve_grouped(&net, &selfc, &o),
            Err(FlowError::SelfCommodity { index: 0 })
        ));
        let badd = [DemandGroup {
            src: 0,
            sinks: SinkSpec::List(vec![(1, -2.0)]),
        }];
        assert!(matches!(
            solve_grouped(&net, &badd, &o),
            Err(FlowError::BadDemand { index: 0, .. })
        ));
        let allzero = [DemandGroup::weighted(0, Arc::new(vec![0.0; 4]), 1.0)];
        assert!(matches!(
            solve_grouped(&net, &allzero, &o),
            Err(FlowError::BadDemand { index: 0, .. })
        ));
        let shortw = [DemandGroup::weighted(0, Arc::new(vec![1.0; 3]), 1.0)];
        assert!(matches!(
            solve_grouped(&net, &shortw, &o),
            Err(FlowError::BadOptions(_))
        ));
    }

    #[test]
    fn deterministic_across_reruns() {
        let net = ring(10, 1.5);
        let weights = Arc::new(vec![1.0; 10]);
        let groups: Vec<DemandGroup> = (0..10)
            .map(|s| DemandGroup::weighted(s, Arc::clone(&weights), 1.0))
            .collect();
        let a = solve_grouped(&net, &groups, &opts()).unwrap();
        let b = solve_grouped(&net, &groups, &opts()).unwrap();
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        assert_eq!(a.settles, b.settles);
    }
}
