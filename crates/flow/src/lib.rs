//! # dctopo-flow
//!
//! Maximum concurrent multi-commodity flow — the throughput engine of the
//! workspace, playing the role CPLEX plays in the paper (§3: "Throughput
//! is then the solution to the standard maximum concurrent
//! multi-commodity flow problem").
//!
//! ## What "throughput" means here
//!
//! Given a capacitated graph and commodities `(src, dst, demand)`, the
//! *max concurrent flow* value λ is the largest scalar such that `λ·dⱼ`
//! units can be routed simultaneously for every commodity `j` without
//! exceeding any arc capacity. Maximising the minimum flow rate — the
//! paper's strict-fairness throughput definition — is exactly this LP.
//!
//! ## Solver
//!
//! [`max_concurrent_flow`] implements the Garg–Könemann / Fleischer
//! multiplicative-weights FPTAS with two production twists:
//!
//! 1. **Certified bounds instead of theory constants.** After every phase
//!    we extract (a) a *feasible* primal solution by scaling the
//!    accumulated flow down by its worst arc congestion, and (b) a dual
//!    upper bound `D(l)/α(l)` valid for any positive length function.
//!    The loop stops when the primal is within `target_gap` of the dual,
//!    so every result carries a machine-checked optimality interval.
//! 2. **Source-grouped routing.** Commodities sharing a source are routed
//!    along one Dijkstra tree per iteration with a joint capacity-scaled
//!    step, which keeps each length update bounded by `(1+ε)` while
//!    doing one shortest-path computation for the whole source group.
//!
//! ## Backends
//!
//! All solvers run against one shared, immutable [`CsrNet`] — the flat
//! arc-level view of the graph built once per topology — and implement
//! the [`SolverBackend`] trait:
//!
//! * [`Fptas`] — the production path described above. Its per-phase
//!   source-group Dijkstra passes run in parallel on rayon against a
//!   length snapshot, with a fixed sequential reduction order, so seeded
//!   runs are bit-identical at every thread count.
//! * [`ExactLp`] — the edge-flow LP (via `dctopo-linprog`) the paper
//!   hands to CPLEX; ground truth on small instances.
//! * [`KspRestricted`] — flow restricted to each commodity's k shortest
//!   paths (the practical-routing model of §8). Its per-topology path
//!   freezing is memoised by [`PathSetCache`], so multi-matrix sweeps
//!   pay for Yen's algorithm once per `(topology, k)` — go through
//!   [`solve_with_cache`] to amortise it.
//!
//! Callers pick a backend with [`FlowOptions::backend`] and go through
//! [`solve`] (or the [`max_concurrent_flow`] convenience wrapper that
//! still accepts a [`Graph`]). The pre-CSR, single-threaded FPTAS is
//! kept verbatim in [`mod@reference`] as the benchmark baseline and as an
//! independent cross-check.

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod cut;
pub mod decompose;
pub mod exact;
mod fptas;
pub mod grouped;
pub mod ksp;
pub mod reference;
mod trace;

use std::fmt;

use dctopo_graph::{CsrNet, Graph, GraphError};

/// Re-export: node index type used by [`Commodity`].
pub use dctopo_graph::NodeId;

pub use backend::{solve, solve_with_cache, Backend, ExactLp, Fptas, KspRestricted, SolverBackend};
pub use cache::{CacheStats, KeyStats, PathSetCache};
pub use decompose::{decompose_paths, PathFlow};
pub use fptas::{max_concurrent_flow_csr, max_concurrent_flow_warm, WarmState};
pub use grouped::{solve_grouped, DemandGroup, GroupedFlow, SinkSpec};

/// Solve max concurrent flow on `g` with the backend selected in
/// `opts.backend` (the [`Fptas`] by default).
///
/// Builds the [`CsrNet`] internally; hot paths that solve many traffic
/// matrices on one topology should build the net once and call
/// [`solve`] directly.
///
/// # Errors
/// See [`FlowError`]; notably [`FlowError::Unreachable`] when a
/// commodity's endpoints are disconnected.
pub fn max_concurrent_flow(
    g: &Graph,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    solve(&CsrNet::from_graph(g), commodities, opts)
}

/// One commodity: `demand` units want to travel from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Demand (must be positive and finite).
    pub demand: f64,
}

impl Commodity {
    /// Unit-demand commodity.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Commodity {
            src,
            dst,
            demand: 1.0,
        }
    }
}

/// Options for the throughput engine: iterative-solver tuning plus the
/// backend selector.
#[derive(Debug, Clone, Copy)]
pub struct FlowOptions {
    /// Multiplicative-weights step size ε (length multiplier per
    /// saturating augmentation is `1 + ε`). Smaller = slower, finer.
    pub epsilon: f64,
    /// Stop once the certified primal/dual gap satisfies
    /// `primal ≥ (1 - target_gap) · dual`.
    pub target_gap: f64,
    /// Hard phase budget; the solver returns its best certified answer
    /// when exhausted.
    pub max_phases: usize,
    /// Stop early once the primal has not improved by 0.05% for this
    /// many consecutive phases (the primal is certified-feasible at all
    /// times; stalling means the remaining reported gap is dual-side
    /// looseness). Set to `max_phases` to disable.
    pub stall_phases: usize,
    /// Which [`SolverBackend`] services [`solve`] /
    /// [`max_concurrent_flow`] calls. The iterative knobs above apply to
    /// the FPTAS and k-shortest-path backends; [`Backend::ExactLp`]
    /// ignores them.
    pub backend: Backend,
    /// Route the [`Fptas`] backend through the legacy strict trajectory
    /// (recompute every group's shortest-path tree per augmentation)
    /// instead of the default incremental fast path (tree reuse +
    /// increase-only Dijkstra repair).
    ///
    /// The strict trajectory is **bit-identical** to
    /// [`mod@reference`]'s; the fast path is certified by the same
    /// primal-feasibility and `D(l)/α(l)` dual bounds and remains
    /// bit-identical across thread counts, but follows its own
    /// (cheaper) trajectory. See `docs/ARCHITECTURE.md` for the full
    /// determinism contract. Ignored by the other backends.
    pub strict_reference: bool,
    /// Also record each commodity's own arc flows
    /// ([`SolvedFlow::commodity_arc_flow`]), enabling
    /// [`decompose::decompose_paths`]. Costs `O(commodities × arcs)`
    /// memory plus a second tree walk per augmentation, so it is off by
    /// default. Honoured by every backend except [`mod@reference`].
    pub record_commodity_flows: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            epsilon: 0.1,
            target_gap: 0.03,
            max_phases: 4000,
            stall_phases: 150,
            backend: Backend::Fptas,
            strict_reference: false,
            record_commodity_flows: false,
        }
    }
}

impl FlowOptions {
    /// A faster, looser profile for large sweeps (5% certified gap).
    pub fn fast() -> Self {
        FlowOptions {
            epsilon: 0.15,
            target_gap: 0.05,
            max_phases: 1500,
            stall_phases: 80,
            ..FlowOptions::default()
        }
    }

    /// A tighter profile for headline numbers (1.5% certified gap).
    pub fn precise() -> Self {
        FlowOptions {
            epsilon: 0.05,
            target_gap: 0.015,
            max_phases: 20000,
            stall_phases: 1000,
            ..FlowOptions::default()
        }
    }

    /// Same options with a different backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Same options with [`FlowOptions::strict_reference`] set.
    pub fn with_strict_reference(mut self, strict: bool) -> Self {
        self.strict_reference = strict;
        self
    }

    /// Same options with [`FlowOptions::record_commodity_flows`] set.
    pub fn with_commodity_flows(mut self, record: bool) -> Self {
        self.record_commodity_flows = record;
        self
    }
}

/// A solved max concurrent flow.
#[derive(Debug, Clone)]
pub struct SolvedFlow {
    /// Certified feasible concurrent throughput λ: every commodity `j`
    /// is simultaneously routed at rate ≥ `throughput · demand_j`.
    pub throughput: f64,
    /// Certified dual upper bound on the optimal λ.
    pub upper_bound: f64,
    /// Feasible flow per directed arc (indexed by [`dctopo_graph::ArcId`]).
    pub arc_flow: Vec<f64>,
    /// Achieved rate per commodity (same order as the input slice).
    pub commodity_rate: Vec<f64>,
    /// Number of phases executed.
    pub phases: usize,
    /// Dijkstra-equivalent settle operations (heap pops) the solver
    /// performed — the work metric the fast-path FPTAS optimises.
    /// `0` for solvers that are not instrumented ([`ExactLp`],
    /// [`KspRestricted`], and the [`mod@reference`] baseline).
    pub settles: u64,
    /// Per-commodity arc flows (outer index = commodity in input
    /// order, inner = [`dctopo_graph::ArcId`]), scaled like
    /// [`SolvedFlow::arc_flow`] so that summing over commodities
    /// reproduces it. `Some` only when solved with
    /// [`FlowOptions::record_commodity_flows`]; the input for
    /// [`decompose::decompose_paths`].
    pub commodity_arc_flow: Option<Vec<Vec<f64>>>,
}

impl SolvedFlow {
    /// Total flow delivered, `Σⱼ rateⱼ`.
    pub fn total_rate(&self) -> f64 {
        self.commodity_rate.iter().sum()
    }

    /// Average path length weighted by flow: total arc-hops of flow
    /// divided by total delivered rate. This is the `⟨D⟩·AS` term of the
    /// paper's throughput decomposition.
    pub fn mean_flow_path_len(&self) -> f64 {
        let hops: f64 = self.arc_flow.iter().sum();
        let rate = self.total_rate();
        if rate > 0.0 {
            hops / rate
        } else {
            0.0
        }
    }

    /// Network utilization `U = Σ_a flow_a / Σ_a capacity_a`.
    pub fn utilization(&self, g: &Graph) -> f64 {
        let cap = g.total_capacity();
        if cap > 0.0 {
            self.arc_flow.iter().sum::<f64>() / cap
        } else {
            0.0
        }
    }

    /// Per-undirected-edge utilization: `max` of the two arc directions'
    /// `flow/capacity`.
    pub fn edge_utilization(&self, g: &Graph) -> Vec<f64> {
        (0..g.edge_count())
            .map(|e| {
                let c = g.edge(e).capacity;
                let f = self.arc_flow[e << 1].max(self.arc_flow[(e << 1) | 1]);
                f / c
            })
            .collect()
    }

    /// Certified relative gap `(upper_bound - throughput) / upper_bound`.
    pub fn gap(&self) -> f64 {
        if self.upper_bound > 0.0 {
            (self.upper_bound - self.throughput) / self.upper_bound
        } else {
            0.0
        }
    }
}

/// Errors from the flow solver.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// No commodities were supplied.
    NoCommodities,
    /// A commodity has a non-positive or non-finite demand.
    BadDemand {
        /// Index of the offending commodity in the input slice.
        index: usize,
        /// The invalid demand value.
        demand: f64,
    },
    /// A commodity's endpoints coincide.
    SelfCommodity {
        /// Index of the offending commodity in the input slice.
        index: usize,
    },
    /// A commodity's destination is unreachable from its source.
    Unreachable {
        /// Source node.
        src: NodeId,
        /// Unreachable destination node.
        dst: NodeId,
    },
    /// Underlying graph error.
    Graph(GraphError),
    /// Options are invalid (ε or gap not in (0, 1), zero phase budget).
    BadOptions(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NoCommodities => write!(f, "no commodities supplied"),
            FlowError::BadDemand { index, demand } => {
                write!(f, "commodity {index} has invalid demand {demand}")
            }
            FlowError::SelfCommodity { index } => {
                write!(f, "commodity {index} has src == dst")
            }
            FlowError::Unreachable { src, dst } => {
                write!(f, "destination {dst} unreachable from source {src}")
            }
            FlowError::Graph(e) => write!(f, "graph error: {e}"),
            FlowError::BadOptions(m) => write!(f, "bad solver options: {m}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<GraphError> for FlowError {
    fn from(e: GraphError) -> Self {
        FlowError::Graph(e)
    }
}

/// Validate options and commodities against a network of `node_count`
/// nodes.
pub(crate) fn validate(
    node_count: usize,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<(), FlowError> {
    if commodities.is_empty() {
        return Err(FlowError::NoCommodities);
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(FlowError::BadOptions(format!(
            "epsilon {} not in (0,1)",
            opts.epsilon
        )));
    }
    if !(opts.target_gap > 0.0 && opts.target_gap < 1.0) {
        return Err(FlowError::BadOptions(format!(
            "target_gap {} not in (0,1)",
            opts.target_gap
        )));
    }
    if opts.max_phases == 0 {
        return Err(FlowError::BadOptions("max_phases must be positive".into()));
    }
    for (i, c) in commodities.iter().enumerate() {
        if !(c.demand.is_finite() && c.demand > 0.0) {
            return Err(FlowError::BadDemand {
                index: i,
                demand: c.demand,
            });
        }
        if c.src == c.dst {
            return Err(FlowError::SelfCommodity { index: i });
        }
        if c.src >= node_count {
            return Err(FlowError::Graph(GraphError::NodeOutOfRange {
                node: c.src,
                n: node_count,
            }));
        }
        if c.dst >= node_count {
            return Err(FlowError::Graph(GraphError::NodeOutOfRange {
                node: c.dst,
                n: node_count,
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_inputs() {
        let opts = FlowOptions::default();
        assert_eq!(validate(2, &[], &opts), Err(FlowError::NoCommodities));
        assert!(matches!(
            validate(
                2,
                &[Commodity {
                    src: 0,
                    dst: 1,
                    demand: -1.0
                }],
                &opts
            ),
            Err(FlowError::BadDemand { .. })
        ));
        assert!(matches!(
            validate(2, &[Commodity::unit(1, 1)], &opts),
            Err(FlowError::SelfCommodity { .. })
        ));
        assert!(matches!(
            validate(2, &[Commodity::unit(0, 9)], &opts),
            Err(FlowError::Graph(_))
        ));
        let bad = FlowOptions {
            epsilon: 0.0,
            ..opts
        };
        assert!(matches!(
            validate(2, &[Commodity::unit(0, 1)], &bad),
            Err(FlowError::BadOptions(_))
        ));
    }

    #[test]
    fn flow_options_profiles_ordered() {
        assert!(FlowOptions::precise().target_gap < FlowOptions::default().target_gap);
        assert!(FlowOptions::fast().target_gap >= FlowOptions::default().target_gap);
    }

    #[test]
    fn error_display_mentions_details() {
        let e = FlowError::Unreachable { src: 3, dst: 9 };
        assert!(e.to_string().contains('3') && e.to_string().contains('9'));
    }
}
