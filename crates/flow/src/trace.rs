//! Shared telemetry helpers for the flow solvers: attach graph-layer
//! [`DeltaStats`] snapshots to [`dctopo_obs`] events with the crate's
//! deterministic/non-deterministic field partition applied.

use dctopo_graph::DeltaStats;
use dctopo_obs::{Event, Json};

/// Attach a [`DeltaStats`] snapshot to an event. The schedule-invariant
/// counters (buckets, rounds, expansions, occupancy histogram) go in as
/// deterministic fields; the CAS tallies — the one interleaving-dependent
/// pair — go under `nd`.
#[must_use]
pub(crate) fn with_delta_stats(ev: Event, st: &DeltaStats) -> Event {
    let hist: Vec<Json> = st.occupancy_hist.iter().map(|&b| Json::from(b)).collect();
    ev.field("sssp_runs", st.runs)
        .field("buckets", st.buckets)
        .field("light_rounds", st.light_rounds)
        .field("expansions", st.expansions)
        .field("heavy_expansions", st.heavy_expansions)
        .field("edge_scans", st.edge_scans)
        .field("par_rounds", st.par_rounds)
        .field("seq_rounds", st.seq_rounds)
        .field("occupancy_hist", hist)
        .nd("cas_success", st.cas_success)
        .nd("cas_retries", st.cas_retries)
}
