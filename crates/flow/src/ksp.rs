//! Max concurrent flow restricted to the `k` shortest paths of each
//! commodity — the *practical routing* model (§8: real fabrics route on
//! k-shortest paths with MPTCP/ECMP, not on arbitrary splittable routes).
//!
//! Comparing [`crate::KspRestricted`] against the unrestricted optimum
//! from [`crate::Fptas`] quantifies how much throughput a k-path routing
//! scheme leaves on the table — the flow-level analogue of the paper's
//! Fig. 13 question.
//!
//! The algorithm is multiplicative weights over the *fixed* path sets:
//! each round, every commodity routes its demand on its currently
//! cheapest path (no shortest-path recomputation — path sets are frozen
//! up front with Yen's algorithm), lengths grow on used arcs, and the
//! same primal-scaling/dual-bound certificates as the main solver apply.
//! The dual bound here is valid *for the restricted problem*: α uses the
//! cheapest path within each commodity's set.
//!
//! Path freezing is a one-time preprocessing step and runs on an
//! adjacency-list [`Graph`] (rebuilt from the [`CsrNet`] when needed);
//! the hot multiplicative-weights loop runs on the flat CSR arrays.
//! Because freezing depends only on the topology and `k`, it is
//! memoisable: [`max_concurrent_flow_ksp_cached`] reuses frozen path
//! sets from a [`PathSetCache`] and is bit-identical to the cold
//! [`max_concurrent_flow_ksp_csr`].

use std::sync::Arc;

use dctopo_graph::kshortest::yen_k_shortest;
use dctopo_graph::{CsrNet, Graph, NodeId};

use crate::cache::{FrozenPathSet, PathSetCache};
use crate::{validate, Commodity, FlowError, FlowOptions, SolvedFlow};

/// Solve max concurrent flow where commodity `j` may only use its `k`
/// shortest (by hop count) simple paths. Graph-level convenience
/// wrapper over [`max_concurrent_flow_ksp_csr`].
pub fn max_concurrent_flow_ksp(
    g: &Graph,
    commodities: &[Commodity],
    k: usize,
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    freeze_and_solve(g, &CsrNet::from_graph(g), commodities, k, opts)
}

/// k-shortest-paths-restricted solve on a prebuilt net (the
/// [`crate::KspRestricted`] backend entry point), freezing path sets
/// from scratch — the *cold* path.
///
/// Returns the same certified [`SolvedFlow`] as the unrestricted solver;
/// `throughput` ≤ the unrestricted optimum by construction.
///
/// Repeated solves on one topology should go through
/// [`max_concurrent_flow_ksp_cached`] instead, which amortises the
/// adjacency-list rebuild and the Yen runs across traffic matrices.
pub fn max_concurrent_flow_ksp_csr(
    net: &CsrNet,
    commodities: &[Commodity],
    k: usize,
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    freeze_and_solve(&net.to_graph(), net, commodities, k, opts)
}

/// [`max_concurrent_flow_ksp_csr`] with path-set preprocessing served
/// from (and recorded into) `cache` — the *amortised* path.
///
/// Bit-identical to the cold entry point for the same inputs: the cache
/// stores exactly what cold freezing computes (Yen is deterministic),
/// and the multiplicative-weights loop is shared.
pub fn max_concurrent_flow_ksp_cached(
    net: &CsrNet,
    commodities: &[Commodity],
    k: usize,
    opts: &FlowOptions,
    cache: &PathSetCache,
) -> Result<SolvedFlow, FlowError> {
    validate(net.node_count(), commodities, opts)?;
    if k == 0 {
        return Err(FlowError::BadOptions("k must be at least 1".into()));
    }
    let paths = cache.freeze(net, commodities, k)?;
    solve_frozen(net, commodities, &paths, opts)
}

/// Freeze one `(src, dst)` pair's k-shortest path set as arc sequences.
/// Shared by cold freezing here and by [`PathSetCache`] misses.
///
/// Yen enumerates hop-metric node paths on the adjacency-list `g`; the
/// translation to arc ids goes through `net`, so the frozen sequences
/// always use the net's own arc numbering. That distinction matters on
/// degraded views: their [`CsrNet::to_graph`] rebuild compacts edge ids,
/// but the view's arc ids (which flow vectors index) stay aligned with
/// the base topology. `g` must have the same node set and per-node
/// neighbor order as `net` (e.g. `net.to_graph()`).
pub(crate) fn freeze_pair(
    g: &Graph,
    net: &CsrNet,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Result<Vec<Vec<usize>>, FlowError> {
    let node_paths =
        yen_k_shortest(g, src, dst, k).map_err(|_| FlowError::Unreachable { src, dst })?;
    node_paths
        .iter()
        .map(|p| nodes_to_arcs(net, p))
        .collect::<Result<Vec<_>, _>>()
}

fn freeze_and_solve(
    g: &Graph,
    net: &CsrNet,
    commodities: &[Commodity],
    k: usize,
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    validate(net.node_count(), commodities, opts)?;
    if k == 0 {
        return Err(FlowError::BadOptions("k must be at least 1".into()));
    }
    let paths = commodities
        .iter()
        .map(|c| freeze_pair(g, net, c.src, c.dst, k).map(Arc::new))
        .collect::<Result<Vec<FrozenPathSet>, _>>()?;
    solve_frozen(net, commodities, &paths, opts)
}

/// The multiplicative-weights loop over frozen path sets (one
/// [`FrozenPathSet`] per commodity, commodity order). Cold and cached
/// entry points converge here, which is what makes them bit-identical.
fn solve_frozen(
    net: &CsrNet,
    commodities: &[Commodity],
    paths: &[FrozenPathSet],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    let num_arcs = net.arc_count();
    let eps = opts.epsilon;
    let mut length: Vec<f64> = net.inv_capacities().to_vec();
    let mut arc_flow = vec![0.0f64; num_arcs];
    let mut routed = vec![0.0f64; commodities.len()];
    let mut cf: Option<Vec<Vec<f64>>> = opts
        .record_commodity_flows
        .then(|| vec![vec![0.0f64; num_arcs]; commodities.len()]);
    let mut best_dual = f64::INFINITY;
    let mut best: Option<SolvedFlow> = None;
    let mut phases = 0usize;
    let mut last_primal = 0.0f64;
    let mut stagnant = 0usize;
    const RESCALE_ABOVE: f64 = 1e100;

    while phases < opts.max_phases {
        phases += 1;
        for (j, c) in commodities.iter().enumerate() {
            // cheapest path in the frozen set under current lengths
            let mut remaining = c.demand;
            let mut inner = 0;
            while remaining > 1e-12 && inner < 16 {
                inner += 1;
                let (best_path, _) = cheapest(&paths[j][..], &length);
                // capacity-scaled step along that path
                let bottleneck = best_path
                    .iter()
                    .map(|&a| net.capacity(a))
                    .fold(f64::INFINITY, f64::min);
                let send = remaining.min(bottleneck);
                for &a in best_path {
                    arc_flow[a] += send;
                    length[a] *= 1.0 + eps * (send * net.inv_capacity(a));
                }
                if let Some(cf) = cf.as_mut() {
                    for &a in best_path {
                        cf[j][a] += send;
                    }
                }
                routed[j] += send;
                remaining -= send;
            }
        }
        // rescale lengths
        let max_len = length.iter().copied().fold(0.0f64, f64::max);
        if max_len > RESCALE_ABOVE {
            let inv = 1.0 / max_len;
            for l in length.iter_mut() {
                *l *= inv;
            }
        }
        // certificates
        let mu = arc_flow
            .iter()
            .zip(net.inv_capacities())
            .map(|(&f, &ic)| f * ic)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let primal = commodities
            .iter()
            .enumerate()
            .map(|(j, c)| routed[j] / (mu * c.demand))
            .fold(f64::INFINITY, f64::min);
        if phases.is_multiple_of(4) {
            let d_l: f64 = length
                .iter()
                .zip(net.capacities())
                .map(|(&l, &c)| l * c)
                .sum();
            let alpha: f64 = commodities
                .iter()
                .enumerate()
                .map(|(j, c)| c.demand * cheapest(&paths[j][..], &length).1)
                .sum();
            let bound = d_l / alpha;
            if bound.is_finite() && bound > 0.0 {
                best_dual = best_dual.min(bound);
            }
        }
        if best.as_ref().is_none_or(|b| primal > b.throughput) {
            best = Some(SolvedFlow {
                throughput: primal,
                upper_bound: best_dual,
                arc_flow: arc_flow.iter().map(|&f| f / mu).collect(),
                commodity_rate: routed.iter().map(|&r| r / mu).collect(),
                commodity_arc_flow: cf.as_ref().map(|c| {
                    c.iter()
                        .map(|v| v.iter().map(|&f| f / mu).collect())
                        .collect()
                }),
                phases,
                settles: 0,
            });
        }
        if primal >= (1.0 - opts.target_gap) * best_dual {
            break;
        }
        if primal > last_primal * 1.0005 {
            last_primal = primal;
            stagnant = 0;
        } else {
            stagnant += 1;
            if stagnant >= opts.stall_phases {
                break;
            }
        }
    }
    let mut sol = best.expect("at least one phase");
    sol.upper_bound = best_dual;
    sol.phases = phases;
    Ok(sol)
}

fn cheapest<'p>(paths: &'p [Vec<usize>], length: &[f64]) -> (&'p Vec<usize>, f64) {
    let mut best = &paths[0];
    let mut best_len = f64::INFINITY;
    for p in paths {
        let l: f64 = p.iter().map(|&a| length[a]).sum();
        if l < best_len {
            best_len = l;
            best = p;
        }
    }
    (best, best_len)
}

/// Translate a node path into the net's arc ids: each hop takes the
/// first live adjacency slot from `u` to `v`, i.e. the minimum arc id —
/// the same arc the old `Graph::find_edge` + `arc_of` translation chose
/// (adjacency slots are in edge-insertion order), pinned bitwise by the
/// cache property suite.
fn nodes_to_arcs(net: &CsrNet, nodes: &[NodeId]) -> Result<Vec<usize>, FlowError> {
    nodes
        .windows(2)
        .map(|w| {
            let (arcs, heads) = net.out_slots(w[0]);
            arcs.iter()
                .zip(heads)
                .find(|&(_, &h)| h as usize == w[1])
                .map(|(&a, _)| a as usize)
                .ok_or(FlowError::Unreachable {
                    src: w[0],
                    dst: w[1],
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_concurrent_flow;

    fn opts() -> FlowOptions {
        FlowOptions {
            epsilon: 0.05,
            target_gap: 0.03,
            max_phases: 10000,
            stall_phases: 800,
            ..FlowOptions::default()
        }
    }

    /// k = 1 on a 4-cycle: only the one shortest route per direction is
    /// usable, so a single commodity gets half of what unrestricted
    /// multipath routing gets.
    #[test]
    fn single_path_halves_cycle_throughput() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let cs = [Commodity::unit(0, 2)];
        let restricted = max_concurrent_flow_ksp(&g, &cs, 1, &opts()).unwrap();
        let free = max_concurrent_flow(&g, &cs, &opts()).unwrap();
        assert!(
            (restricted.throughput - 1.0).abs() < 0.05,
            "k=1: {}",
            restricted.throughput
        );
        assert!(
            (free.throughput - 2.0).abs() < 0.08,
            "free: {}",
            free.throughput
        );
    }

    /// k = 2 recovers the full cycle capacity.
    #[test]
    fn two_paths_recover_cycle() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let cs = [Commodity::unit(0, 2)];
        let s = max_concurrent_flow_ksp(&g, &cs, 2, &opts()).unwrap();
        assert!((s.throughput - 2.0).abs() < 0.08, "k=2: {}", s.throughput);
    }

    /// Restricted throughput is monotone in k and never beats the
    /// unrestricted optimum.
    #[test]
    fn monotone_in_k_and_bounded() {
        // 5-node graph with parallel route structure
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let cs = [Commodity::unit(0, 4)];
        let free = max_concurrent_flow(&g, &cs, &opts()).unwrap().throughput;
        let mut prev = 0.0;
        for k in 1..=3 {
            let t = max_concurrent_flow_ksp(&g, &cs, k, &opts())
                .unwrap()
                .throughput;
            assert!(t >= prev - 0.02, "k={k} dropped: {t} < {prev}");
            assert!(t <= free * 1.02, "k={k} beat unrestricted: {t} > {free}");
            prev = t;
        }
        assert!(
            (prev - 3.0).abs() < 0.12,
            "k=3 should use all 3 disjoint paths: {prev}"
        );
    }

    /// Certificates hold in restricted mode too.
    #[test]
    fn restricted_certificates() {
        let mut g = Graph::new(6);
        for v in 0..6 {
            g.add_unit_edge(v, (v + 1) % 6).unwrap();
        }
        g.add_unit_edge(0, 3).unwrap();
        let cs = [
            Commodity::unit(0, 3),
            Commodity::unit(1, 4),
            Commodity::unit(2, 5),
        ];
        let s = max_concurrent_flow_ksp(&g, &cs, 4, &opts()).unwrap();
        assert!(s.throughput <= s.upper_bound * (1.0 + 1e-9));
        for a in 0..g.arc_count() {
            assert!(s.arc_flow[a] <= g.arc_capacity(a) * (1.0 + 1e-9));
        }
    }

    /// The CSR entry point (used by the backend) matches the Graph one.
    #[test]
    fn csr_and_graph_entry_points_agree() {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let net = CsrNet::from_graph(&g);
        let cs = [Commodity::unit(0, 4)];
        let a = max_concurrent_flow_ksp(&g, &cs, 2, &opts()).unwrap();
        let b = max_concurrent_flow_ksp_csr(&net, &cs, 2, &opts()).unwrap();
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.phases, b.phases);
    }

    /// The cached entry point returns bit-identical results to the cold
    /// one, whether the cache is empty (miss path) or warm (hit path).
    #[test]
    fn cached_matches_cold_bitwise() {
        let mut g = Graph::new(6);
        for v in 0..6 {
            g.add_unit_edge(v, (v + 1) % 6).unwrap();
        }
        g.add_unit_edge(0, 3).unwrap();
        let net = CsrNet::from_graph(&g);
        let cs = [Commodity::unit(0, 3), Commodity::unit(1, 4)];
        let cache = PathSetCache::new();
        let cold = max_concurrent_flow_ksp_csr(&net, &cs, 3, &opts()).unwrap();
        let miss = max_concurrent_flow_ksp_cached(&net, &cs, 3, &opts(), &cache).unwrap();
        let hit = max_concurrent_flow_ksp_cached(&net, &cs, 3, &opts(), &cache).unwrap();
        assert_eq!(cache.stats().hits, 2);
        for s in [&miss, &hit] {
            assert_eq!(cold.throughput.to_bits(), s.throughput.to_bits());
            assert_eq!(cold.upper_bound.to_bits(), s.upper_bound.to_bits());
            assert_eq!(cold.phases, s.phases);
            for (x, y) in cold.arc_flow.iter().zip(&s.arc_flow) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Solving on a failure delta view is bit-identical to solving on a
    /// net rebuilt from the degraded graph: the view's adjacency keeps
    /// the rebuild's neighbor order, so Yen, translation, and the
    /// multiplicative-weights trajectory all coincide.
    #[test]
    fn degraded_view_matches_rebuilt_net_bitwise() {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let net = CsrNet::from_graph(&g);
        // fail the middle route (edges 2 and 3: 0-2, 2-4)
        let view = net.with_disabled_arcs(&[2 << 1, 3 << 1]).unwrap();
        let rebuilt = CsrNet::from_graph(&view.to_graph());
        let cs = [Commodity::unit(0, 4)];
        let a = max_concurrent_flow_ksp_csr(&view, &cs, 3, &opts()).unwrap();
        let b = max_concurrent_flow_ksp_csr(&rebuilt, &cs, 3, &opts()).unwrap();
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        assert_eq!(a.phases, b.phases);
        // no flow ever lands on the failed edges in the view's numbering
        for dead in [2 << 1, (2 << 1) | 1, 3 << 1, (3 << 1) | 1] {
            assert_eq!(a.arc_flow[dead], 0.0, "flow on failed arc {dead}");
        }
        // only the two surviving disjoint routes remain: λ ≈ 2
        assert!((a.throughput - 2.0).abs() < 0.08, "λ = {}", a.throughput);
    }

    #[test]
    fn cached_rejects_k_zero() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        let net = CsrNet::from_graph(&g);
        let cache = PathSetCache::new();
        assert!(matches!(
            max_concurrent_flow_ksp_cached(&net, &[Commodity::unit(0, 1)], 0, &opts(), &cache),
            Err(FlowError::BadOptions(_))
        ));
    }

    #[test]
    fn rejects_k_zero_and_unreachable() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let cs = [Commodity::unit(0, 1)];
        assert!(matches!(
            max_concurrent_flow_ksp(&g, &cs, 0, &opts()),
            Err(FlowError::BadOptions(_))
        ));
        let cs_bad = [Commodity::unit(0, 3)];
        assert!(matches!(
            max_concurrent_flow_ksp(&g, &cs_bad, 2, &opts()),
            Err(FlowError::Unreachable { .. })
        ));
    }
}
