//! Amortised path-set preprocessing for the [`crate::KspRestricted`]
//! backend.
//!
//! Freezing a commodity's k-shortest path set (Yen's algorithm over an
//! adjacency-list rebuild of the net) is the dominant cost of a
//! KSP-restricted solve on all but the largest instances, and it depends
//! only on the *topology* and `k` — not on the traffic matrix. The
//! paper's core experiment sweeps many traffic matrices over one fixed
//! topology, so [`PathSetCache`] memoises frozen path sets per
//! `(CsrNet structure, k)` and per `(src, dst)` pair: the first solve
//! against a topology pays for Yen, every later solve that routes
//! between previously-seen switch pairs reuses the frozen arc sequences.
//!
//! ## Why an identity token, not a structural hash
//!
//! The key is [`CsrNet::structure_id`] — a process-unique token assigned
//! when a net (or a structure-changing view) is built and preserved by
//! `Clone` **and by capacity-only delta views**. structure_id equality
//! guarantees identical adjacency and arc numbering, and Yen's paths
//! here are hop-metric — they depend only on structure — so a hit can
//! never return paths invalid for the requesting net. This is what lets
//! a capacity-degradation sweep (uniform scaling, line-card mixes) reuse
//! one topology's frozen path sets across every cell, while
//! failure views ([`CsrNet::with_disabled_arcs`]) carry a fresh
//! structure_id and correctly re-freeze. Structurally equal nets built
//! separately simply miss; correctness never depends on a structural
//! hash.
//!
//! ## Determinism invariant
//!
//! A cached solve is **bit-identical** to a cold solve: Yen's algorithm
//! and the arc translation are deterministic functions of
//! `(topology, src, dst, k)`, the cache stores their exact output, and
//! the multiplicative-weights loop consumes frozen paths the same way in
//! both cases. `tests/properties.rs` pins this across 50 seeded graphs
//! and three values of `k`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dctopo_graph::{CsrNet, Graph, NodeId};

use crate::{Commodity, FlowError};

/// A frozen k-shortest path set for one `(src, dst)` pair: each path is
/// the sequence of [`dctopo_graph::ArcId`]s from source to destination,
/// in non-decreasing hop-length order (Yen order).
pub type FrozenPathSet = Arc<Vec<Vec<usize>>>;

/// Cache hit/miss counters (one entry = one `(src, dst)` pair frozen
/// under one `(net, k)` key).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pair lookups served from the cache.
    pub hits: u64,
    /// Pair lookups that had to run Yen's algorithm.
    pub misses: u64,
}

/// Per-`(net structure, k)` cache statistics snapshot (see
/// [`PathSetCache::key_stats`]).
///
/// `k` and `entries` are pure functions of the workload; `hits` /
/// `misses` are not when solves race (two concurrent solvers missing
/// the same pair both count a miss), and `structure_id` allocation
/// order follows net construction order — so telemetry emitting these
/// should put the split and the raw id in the non-deterministic
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyStats {
    /// The [`CsrNet::structure_id`] half of the cache key.
    pub structure_id: u64,
    /// The `k` half of the cache key.
    pub k: usize,
    /// Frozen `(src, dst)` pairs stored under this key.
    pub entries: usize,
    /// Pair lookups under this key served from the cache.
    pub hits: u64,
    /// Pair lookups under this key that ran Yen's algorithm.
    pub misses: u64,
}

/// Memoises frozen k-shortest path sets per `(CsrNet identity, k)` so
/// repeated [`crate::KspRestricted`] solves on one topology amortise
/// Yen preprocessing across traffic matrices — mirroring what the FPTAS
/// already gets from reusing one [`CsrNet`].
///
/// Thread-safe (`&self` everywhere, internal mutex); share one cache per
/// topology sweep, e.g. via `ThroughputEngine` in `dctopo-core`. Yen
/// runs for missing pairs execute *outside* the lock, so concurrent
/// solvers on different nets never serialise on each other's
/// preprocessing.
#[derive(Debug, Default)]
pub struct PathSetCache {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Adjacency-list rebuild per net structure — Yen wants a [`Graph`],
    /// and rebuilding it per solve was half the cold-start cost. (Yen is
    /// hop-metric, so the rebuilt graph's capacities are irrelevant and
    /// any same-structure view's rebuild serves all of them.)
    graphs: HashMap<u64, Arc<Graph>>,
    /// Frozen path sets keyed by `(net structure id, k)`, then
    /// `(src, dst)`.
    paths: HashMap<(u64, usize), HashMap<(NodeId, NodeId), FrozenPathSet>>,
    stats: CacheStats,
    /// Hit/miss split per `(structure id, k)` key (the telemetry view;
    /// `stats` above stays the cheap global aggregate).
    key_stats: HashMap<(u64, usize), CacheStats>,
}

impl PathSetCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frozen path sets for every commodity, in commodity order: cached
    /// pairs are returned as-is, missing pairs are frozen with Yen's
    /// algorithm (outside the lock) and inserted.
    ///
    /// # Errors
    /// [`FlowError::Unreachable`] when a commodity's endpoints are
    /// disconnected; failed pairs are not inserted.
    pub fn freeze(
        &self,
        net: &CsrNet,
        commodities: &[Commodity],
        k: usize,
    ) -> Result<Vec<FrozenPathSet>, FlowError> {
        let key = (net.structure_id(), k);
        // phase 1 (locked): resolve hits, collect distinct misses, and
        // grab (or build) the shared adjacency-list view
        let mut out: Vec<Option<FrozenPathSet>> = vec![None; commodities.len()];
        let mut missing: Vec<(NodeId, NodeId)> = Vec::new();
        let mut missing_set: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        let graph: Arc<Graph> = {
            let mut inner = self.inner.lock().expect("path cache poisoned");
            let by_pair = inner.paths.entry(key).or_default();
            let mut hits = 0u64;
            for (j, c) in commodities.iter().enumerate() {
                match by_pair.get(&(c.src, c.dst)) {
                    Some(p) => {
                        out[j] = Some(Arc::clone(p));
                        hits += 1;
                    }
                    None => {
                        if missing_set.insert((c.src, c.dst)) {
                            missing.push((c.src, c.dst));
                        }
                    }
                }
            }
            inner.stats.hits += hits;
            inner.stats.misses += commodities.len() as u64 - hits;
            let ks = inner.key_stats.entry(key).or_default();
            ks.hits += hits;
            ks.misses += commodities.len() as u64 - hits;
            if missing.is_empty() {
                return Ok(out.into_iter().map(|p| p.expect("all hits")).collect());
            }
            inner.graphs.get(&net.structure_id()).cloned()
        }
        // The O(nodes + arcs) adjacency rebuild runs outside the lock,
        // like the Yen runs below — concurrent solvers on different
        // nets must not serialise on each other's preprocessing. A
        // racing rebuild of the same net produces identical content
        // (`to_graph` is deterministic), so first-writer-wins is safe.
        .unwrap_or_else(|| {
            let built = Arc::new(net.to_graph());
            let mut inner = self.inner.lock().expect("path cache poisoned");
            inner
                .graphs
                .entry(net.structure_id())
                .or_insert(built)
                .clone()
        });
        // phase 2 (unlocked): freeze the missing pairs. Yen enumerates
        // node paths on the adjacency-list rebuild; arc translation goes
        // through `net` so the stored sequences use the net's own arc
        // numbering (the rebuild's edge ids compact on degraded views).
        let mut frozen: Vec<((NodeId, NodeId), FrozenPathSet)> = Vec::with_capacity(missing.len());
        for &(src, dst) in &missing {
            let paths = crate::ksp::freeze_pair(&graph, net, src, dst, k)?;
            frozen.push(((src, dst), Arc::new(paths)));
        }
        // phase 3 (locked): publish. A racing freeze of the same pair
        // computed identical paths (Yen is deterministic), so
        // first-writer-wins is safe either way.
        {
            let mut inner = self.inner.lock().expect("path cache poisoned");
            let by_pair = inner.paths.entry(key).or_default();
            for (pair, paths) in frozen {
                by_pair.entry(pair).or_insert(paths);
            }
            let by_pair = inner.paths.get(&key).expect("just inserted");
            for (j, c) in commodities.iter().enumerate() {
                if out[j].is_none() {
                    out[j] = Some(Arc::clone(&by_pair[&(c.src, c.dst)]));
                }
            }
        }
        Ok(out.into_iter().map(|p| p.expect("filled")).collect())
    }

    /// Total frozen `(src, dst)` entries across all `(net, k)` keys.
    pub fn entry_count(&self) -> usize {
        let inner = self.inner.lock().expect("path cache poisoned");
        inner.paths.values().map(HashMap::len).sum()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("path cache poisoned").stats
    }

    /// Per-`(structure, k)` statistics, sorted by `(structure_id, k)`
    /// so the listing order is stable for a given set of keys.
    pub fn key_stats(&self) -> Vec<KeyStats> {
        let inner = self.inner.lock().expect("path cache poisoned");
        let mut out: Vec<KeyStats> = inner
            .key_stats
            .iter()
            .map(|(&(structure_id, k), s)| KeyStats {
                structure_id,
                k,
                entries: inner.paths.get(&(structure_id, k)).map_or(0, HashMap::len),
                hits: s.hits,
                misses: s.misses,
            })
            .collect();
        out.sort_unstable_by_key(|s| (s.structure_id, s.k));
        out
    }

    /// Drop every cached graph and path set (counters included). Useful
    /// when sweeping many topologies through one long-lived cache.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("path cache poisoned");
        inner.graphs.clear();
        inner.paths.clear();
        inner.stats = CacheStats::default();
        inner.key_stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo_graph::Graph;

    fn net() -> CsrNet {
        let mut g = Graph::new(5);
        for &(u, v) in &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)] {
            g.add_unit_edge(u, v).unwrap();
        }
        CsrNet::from_graph(&g)
    }

    #[test]
    fn second_freeze_hits() {
        let cache = PathSetCache::new();
        let net = net();
        let cs = [Commodity::unit(0, 4), Commodity::unit(1, 4)];
        let a = cache.freeze(&net, &cs, 2).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.entry_count(), 2);
        let b = cache.freeze(&net, &cs, 2).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 2 });
        for (x, y) in a.iter().zip(&b) {
            assert!(Arc::ptr_eq(x, y), "hit must return the same frozen set");
        }
    }

    #[test]
    fn keys_separate_nets_and_k() {
        let cache = PathSetCache::new();
        let (n1, n2) = (net(), net());
        assert_ne!(
            n1.id(),
            n2.id(),
            "structurally equal nets keep distinct ids"
        );
        let cs = [Commodity::unit(0, 4)];
        cache.freeze(&n1, &cs, 2).unwrap();
        cache.freeze(&n2, &cs, 2).unwrap();
        cache.freeze(&n1, &cs, 3).unwrap();
        assert_eq!(
            cache.stats().misses,
            3,
            "distinct (net, k) keys never collide"
        );
        assert_eq!(cache.entry_count(), 3);
        // a clone shares identity, so it hits
        let clone = n1.clone();
        cache.freeze(&clone, &cs, 2).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn capacity_views_share_frozen_paths_but_failure_views_refreeze() {
        let cache = PathSetCache::new();
        let net = net();
        let cs = [Commodity::unit(0, 4)];
        let a = cache.freeze(&net, &cs, 2).unwrap();
        // capacity-only view: same structure_id, so the pair hits
        let scaled = net.with_scaled_capacity(3.0).unwrap();
        let b = cache.freeze(&scaled, &cs, 2).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert!(Arc::ptr_eq(&a[0], &b[0]), "scaled view must reuse paths");
        // failure view: fresh structure_id, must re-freeze
        let failed = net.with_disabled_arcs(&[0]).unwrap();
        cache.freeze(&failed, &cs, 2).unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn key_stats_split_per_structure_and_k() {
        let cache = PathSetCache::new();
        let (n1, n2) = (net(), net());
        let cs = [Commodity::unit(0, 4), Commodity::unit(1, 4)];
        cache.freeze(&n1, &cs, 2).unwrap();
        cache.freeze(&n1, &cs, 2).unwrap();
        cache.freeze(&n2, &cs, 3).unwrap();
        let ks = cache.key_stats();
        assert_eq!(ks.len(), 2);
        // sorted by (structure_id, k); ids are allocated in net build order
        assert!(ks[0].structure_id < ks[1].structure_id);
        assert_eq!(
            (ks[0].k, ks[0].entries, ks[0].hits, ks[0].misses),
            (2, 2, 2, 2)
        );
        assert_eq!(
            (ks[1].k, ks[1].entries, ks[1].hits, ks[1].misses),
            (3, 2, 0, 2)
        );
        cache.clear();
        assert!(cache.key_stats().is_empty());
    }

    #[test]
    fn unreachable_pair_is_error_and_not_cached() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let net = CsrNet::from_graph(&g);
        let cache = PathSetCache::new();
        let bad = [Commodity::unit(0, 3)];
        assert!(matches!(
            cache.freeze(&net, &bad, 2),
            Err(FlowError::Unreachable { .. })
        ));
        assert_eq!(cache.entry_count(), 0);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
