//! Cut oracles: exact (brute-force) non-uniform sparsest cut for tiny
//! graphs, and helpers for the two-cluster cut analyses of §6.
//!
//! The non-uniform sparsest cut of graph `G` with demand graph `H` is
//! `min_{S ⊆ V} Cap(S) / Dem(S)` where `Cap(S)` is the capacity crossing
//! `(S, S̄)` and `Dem(S)` the demand separated by it (paper §6.2,
//! Linial–London–Rabinovich). Sparsest cut is NP-hard in general, so the
//! exact oracle enumerates subsets and is limited to ~20 nodes — enough
//! to validate Lemma 2's `φ(G,H) = Θ(q)` behaviour in tests and to
//! explain bottlenecks on small instances.

use dctopo_graph::{Graph, NodeId};

use crate::Commodity;

/// Result of a sparsest-cut search.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsestCut {
    /// The sparsity `Cap(S)/Dem(S)` of the best cut found.
    pub sparsity: f64,
    /// Membership of side `S` (true = in S).
    pub side: Vec<bool>,
    /// Capacity crossing the cut (both directions).
    pub capacity: f64,
    /// Demand separated by the cut (both directions of each commodity
    /// count once — a commodity is either separated or not).
    pub demand: f64,
}

/// Exact non-uniform sparsest cut by subset enumeration.
///
/// Panics if the graph has more than 24 nodes (2²⁴ subsets is the
/// practical ceiling); the caller should use structural knowledge (as the
/// paper's §6.2 does) beyond that.
pub fn sparsest_cut_exact(g: &Graph, demands: &[Commodity]) -> Option<SparsestCut> {
    let n = g.node_count();
    assert!(n <= 24, "sparsest_cut_exact limited to 24 nodes, got {n}");
    if n < 2 || demands.is_empty() {
        return None;
    }
    let mut best: Option<SparsestCut> = None;
    // enumerate subsets containing node 0 to halve the work (complement
    // symmetric)
    for mask in 0u32..(1u32 << (n - 1)) {
        let full = (mask << 1) | 1; // node 0 always in S
        if full == (1 << n) - 1 {
            continue; // S = V separates nothing
        }
        let in_s = |v: NodeId| (full >> v) & 1 == 1;
        let mut dem = 0.0;
        for c in demands {
            if in_s(c.src) != in_s(c.dst) {
                dem += c.demand;
            }
        }
        if dem <= 0.0 {
            continue;
        }
        let mut cap = 0.0;
        for e in g.edges() {
            if in_s(e.u) != in_s(e.v) {
                cap += 2.0 * e.capacity; // both directions
            }
        }
        let sparsity = cap / dem;
        if best.as_ref().is_none_or(|b| sparsity < b.sparsity) {
            best = Some(SparsestCut {
                sparsity,
                side: (0..n).map(in_s).collect(),
                capacity: cap,
                demand: dem,
            });
        }
    }
    best
}

/// Sparsity of a *given* bipartition under the given demands.
pub fn cut_sparsity(g: &Graph, demands: &[Commodity], in_s: &[bool]) -> Option<f64> {
    let mut dem = 0.0;
    for c in demands {
        if in_s[c.src] != in_s[c.dst] {
            dem += c.demand;
        }
    }
    if dem <= 0.0 {
        return None;
    }
    let mut cap = 0.0;
    for e in g.edges() {
        if in_s[e.u] != in_s[e.v] {
            cap += 2.0 * e.capacity;
        }
    }
    Some(cap / dem)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Barbell: two triangles joined by one edge. The sparsest cut with
    /// all-pairs demands is the bridge.
    #[test]
    fn barbell_bridge_is_sparsest() {
        let mut g = Graph::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let mut demands = Vec::new();
        for s in 0..6 {
            for t in 0..6 {
                if s != t {
                    demands.push(Commodity::unit(s, t));
                }
            }
        }
        let cut = sparsest_cut_exact(&g, &demands).unwrap();
        // bridge cut: capacity 2 (both dirs), demand 2 * 3 * 3 = 18
        assert!(
            (cut.sparsity - 2.0 / 18.0).abs() < 1e-12,
            "sparsity {}",
            cut.sparsity
        );
        let side_a: Vec<usize> = (0..6).filter(|&v| cut.side[v] == cut.side[0]).collect();
        assert_eq!(side_a.len(), 3);
    }

    /// Sparsest cut upper-bounds max concurrent flow.
    #[test]
    fn sparsest_cut_bounds_flow() {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        let demands = vec![Commodity::unit(0, 2), Commodity::unit(1, 3)];
        let cut = sparsest_cut_exact(&g, &demands).unwrap();
        let flow =
            crate::max_concurrent_flow(&g, &demands, &crate::FlowOptions::default()).unwrap();
        assert!(flow.throughput <= cut.sparsity * (1.0 + 1e-6));
    }

    #[test]
    fn cut_sparsity_of_given_partition() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let demands = vec![Commodity::unit(0, 3)];
        let s = cut_sparsity(&g, &demands, &[true, true, false, false]).unwrap();
        assert!((s - 6.0).abs() < 1e-12); // cap 2*3, demand 1
                                          // partition separating nothing
        assert!(cut_sparsity(&g, &demands, &[true, true, true, true]).is_none());
    }

    #[test]
    fn trivial_cases() {
        let g = Graph::new(1);
        assert!(sparsest_cut_exact(&g, &[]).is_none());
    }
}
