//! The [`SolverBackend`] abstraction: every max-concurrent-flow solver
//! consumes the same shared, immutable [`CsrNet`] and produces the same
//! certified [`SolvedFlow`], so experiment code can swap solvers by
//! flipping [`FlowOptions::backend`].
//!
//! | backend | algorithm | role |
//! |---|---|---|
//! | [`Fptas`] | parallel Garg–Könemann / Fleischer | production path |
//! | [`ExactLp`] | edge-flow LP via `dctopo-linprog` | ground truth on small instances |
//! | [`KspRestricted`] | multiplicative weights on frozen k-shortest path sets | practical-routing model (§8) |

use dctopo_graph::CsrNet;

use crate::cache::PathSetCache;
use crate::{Commodity, FlowError, FlowOptions, SolvedFlow};

/// A max-concurrent-flow solver over the shared CSR network.
///
/// Implementations must be deterministic for fixed inputs: repeated
/// calls (at any rayon thread count) return bit-identical results.
pub trait SolverBackend: Send + Sync {
    /// Short stable identifier (used in logs and benchmark output).
    fn name(&self) -> &'static str;

    /// Solve for the given commodities under `opts`.
    fn solve(
        &self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
    ) -> Result<SolvedFlow, FlowError>;
}

/// The parallel multiplicative-weights FPTAS (see [`max_concurrent_flow_csr`](crate::max_concurrent_flow_csr)).
///
/// Runs the incremental fast path (tree reuse + increase-only Dijkstra
/// repair + annealed ε) by default; set
/// [`FlowOptions::strict_reference`] to pin the legacy trajectory,
/// bit-identical to [`crate::reference`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Fptas;

impl SolverBackend for Fptas {
    fn name(&self) -> &'static str {
        "fptas"
    }

    fn solve(
        &self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
    ) -> Result<SolvedFlow, FlowError> {
        crate::fptas::max_concurrent_flow_csr(net, commodities, opts)
    }
}

/// The exact edge-flow LP (see [`crate::exact`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactLp;

impl SolverBackend for ExactLp {
    fn name(&self) -> &'static str {
        "exact-lp"
    }

    fn solve(
        &self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
    ) -> Result<SolvedFlow, FlowError> {
        crate::exact::exact_solved_flow(net, commodities, opts)
    }
}

/// Flow restricted to each commodity's `k` shortest paths
/// (see [`crate::ksp`]).
#[derive(Debug, Clone, Copy)]
pub struct KspRestricted {
    /// Paths per commodity (must be ≥ 1).
    pub k: usize,
}

impl SolverBackend for KspRestricted {
    fn name(&self) -> &'static str {
        "ksp"
    }

    fn solve(
        &self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
    ) -> Result<SolvedFlow, FlowError> {
        crate::ksp::max_concurrent_flow_ksp_csr(net, commodities, self.k, opts)
    }
}

/// Value-level backend selector carried inside [`FlowOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// [`Fptas`] — the default.
    #[default]
    Fptas,
    /// [`ExactLp`].
    ExactLp,
    /// [`KspRestricted`] with the given path budget.
    KspRestricted {
        /// Paths per commodity.
        k: usize,
    },
}

impl Backend {
    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Fptas => Fptas.name(),
            Backend::ExactLp => ExactLp.name(),
            Backend::KspRestricted { k } => KspRestricted { k }.name(),
        }
    }

    /// Dispatch to the corresponding [`SolverBackend`].
    pub fn solve(
        self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
    ) -> Result<SolvedFlow, FlowError> {
        match self {
            Backend::Fptas => Fptas.solve(net, commodities, opts),
            Backend::ExactLp => ExactLp.solve(net, commodities, opts),
            Backend::KspRestricted { k } => KspRestricted { k }.solve(net, commodities, opts),
        }
    }

    /// [`Backend::solve`] with per-topology preprocessing served from
    /// `cache`. Only [`Backend::KspRestricted`] has cacheable
    /// preprocessing today; the other backends ignore the cache and
    /// behave exactly like [`Backend::solve`]. Results are bit-identical
    /// to the uncached dispatch either way.
    pub fn solve_cached(
        self,
        net: &CsrNet,
        commodities: &[Commodity],
        opts: &FlowOptions,
        cache: &PathSetCache,
    ) -> Result<SolvedFlow, FlowError> {
        match self {
            Backend::KspRestricted { k } => {
                crate::ksp::max_concurrent_flow_ksp_cached(net, commodities, k, opts, cache)
            }
            other => other.solve(net, commodities, opts),
        }
    }
}

/// Solve on a prebuilt net with the backend selected in `opts.backend`.
///
/// This is the single entry point the experiment layer uses; building
/// the [`CsrNet`] once and calling this repeatedly amortises graph
/// flattening across traffic matrices.
pub fn solve(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
) -> Result<SolvedFlow, FlowError> {
    opts.backend.solve(net, commodities, opts)
}

/// [`solve`] with per-topology preprocessing amortised through `cache`
/// (see [`PathSetCache`]). This is what `ThroughputEngine` in
/// `dctopo-core` calls so that a multi-matrix sweep freezes each
/// k-shortest path set once.
pub fn solve_with_cache(
    net: &CsrNet,
    commodities: &[Commodity],
    opts: &FlowOptions,
    cache: &PathSetCache,
) -> Result<SolvedFlow, FlowError> {
    opts.backend.solve_cached(net, commodities, opts, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo_graph::Graph;

    fn square_net() -> CsrNet {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        CsrNet::from_graph(&g)
    }

    #[test]
    fn backend_names_stable() {
        assert_eq!(Backend::Fptas.name(), "fptas");
        assert_eq!(Backend::ExactLp.name(), "exact-lp");
        assert_eq!(Backend::KspRestricted { k: 4 }.name(), "ksp");
        assert_eq!(Backend::default(), Backend::Fptas);
    }

    #[test]
    fn all_backends_agree_on_cycle() {
        let net = square_net();
        let cs = [Commodity::unit(0, 2)];
        let opts = FlowOptions {
            epsilon: 0.05,
            target_gap: 0.02,
            max_phases: 20000,
            stall_phases: 2000,
            ..FlowOptions::default()
        };
        // λ* = 2 via the two edge-disjoint 2-hop routes
        let exact = Backend::ExactLp.solve(&net, &cs, &opts).unwrap();
        assert!((exact.throughput - 2.0).abs() < 1e-6);
        let fptas = Backend::Fptas.solve(&net, &cs, &opts).unwrap();
        assert!(
            (fptas.throughput - 2.0).abs() < 0.06,
            "λ = {}",
            fptas.throughput
        );
        let ksp = Backend::KspRestricted { k: 2 }
            .solve(&net, &cs, &opts)
            .unwrap();
        assert!(
            (ksp.throughput - 2.0).abs() < 0.08,
            "λ = {}",
            ksp.throughput
        );
    }

    #[test]
    fn options_select_backend() {
        let net = square_net();
        let cs = [Commodity::unit(0, 2)];
        let opts = FlowOptions::default().with_backend(Backend::ExactLp);
        let s = solve(&net, &cs, &opts).unwrap();
        assert!((s.throughput - 2.0).abs() < 1e-6);
        // dynamic dispatch through the trait object works too
        let backends: [&dyn SolverBackend; 3] = [&Fptas, &ExactLp, &KspRestricted { k: 2 }];
        for b in backends {
            let s = b.solve(&net, &cs, &FlowOptions::default()).unwrap();
            assert!(s.throughput > 1.5, "{}: λ = {}", b.name(), s.throughput);
        }
    }
}
