//! Two-phase dense primal simplex.
//!
//! Phase 1 minimises the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimises the user objective. Pivoting uses
//! Dantzig's rule (most negative reduced cost) and switches to Bland's
//! rule after a stall is detected, which guarantees termination on
//! degenerate problems.

use crate::{LinearProgram, Relation};

const EPS: f64 = 1e-9;
/// Iterations of non-improving pivots tolerated before Bland's rule kicks in.
const STALL_LIMIT: usize = 64;

/// Hard failure of the solver (as opposed to a legitimate LP status).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The pivot loop exceeded the iteration budget, which indicates a
    /// numerical breakdown (should not happen with Bland's rule).
    IterationLimit { iterations: usize },
    /// A coefficient or RHS was NaN/infinite.
    BadInput(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex exceeded {iterations} iterations")
            }
            LpError::BadInput(m) => write!(f, "bad LP input: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Status of a solved LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable values (length = original variable count).
    pub x: Vec<f64>,
}

struct Tableau {
    /// m rows, each of length `cols + 1` (last entry is RHS).
    rows: Vec<Vec<f64>>,
    /// objective row (reduced costs), length `cols + 1`; we *minimise* it.
    cost: Vec<f64>,
    /// basis[r] = column basic in row r.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, other) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = other[col];
            if factor.abs() > EPS {
                for (o, p) in other.iter_mut().zip(&pivot_row) {
                    *o -= factor * p;
                }
                other[col] = 0.0; // kill residual error exactly
            }
        }
        let factor = self.cost[col];
        if factor.abs() > EPS {
            for (c, p) in self.cost.iter_mut().zip(&pivot_row) {
                *c -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Run the simplex loop minimising the cost row over columns
    /// `0..active_cols`. Returns `Ok(true)` on optimal, `Ok(false)` on
    /// unbounded.
    fn optimize(&mut self, active_cols: usize) -> Result<bool, LpError> {
        let max_iters = 200 * (self.rows.len() + self.cols + 16);
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        for _ in 0..max_iters {
            let bland = stall >= STALL_LIMIT;
            // entering column: negative reduced cost
            let mut enter = None;
            if bland {
                for c in 0..active_cols {
                    if self.cost[c] < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for c in 0..active_cols {
                    if self.cost[c] < best {
                        best = self.cost[c];
                        enter = Some(c);
                    }
                }
            }
            let Some(col) = enter else {
                return Ok(true); // optimal
            };
            // leaving row: min ratio test (Bland tie-break on basis index)
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][col];
                if a > EPS {
                    let ratio = self.rows[r][self.cols] / a;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col);
            let obj = self.cost[self.cols];
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
        Err(LpError::IterationLimit {
            iterations: max_iters,
        })
    }
}

/// Solve the LP by two-phase simplex.
pub fn solve(lp: &LinearProgram) -> Result<LpOutcome, LpError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    for (i, c) in lp.constraints().iter().enumerate() {
        if !c.rhs.is_finite() {
            return Err(LpError::BadInput(format!(
                "constraint {i} has non-finite rhs"
            )));
        }
        if c.coeffs.iter().any(|&(_, a)| !a.is_finite()) {
            return Err(LpError::BadInput(format!(
                "constraint {i} has non-finite coefficient"
            )));
        }
    }
    if lp.objective().iter().any(|a| !a.is_finite()) {
        return Err(LpError::BadInput(
            "objective has non-finite coefficient".into(),
        ));
    }

    // Column layout: [original vars | slack/surplus | artificials] + RHS.
    // First pass: normalise rows to rhs >= 0 and count extra columns.
    let mut slack_count = 0usize;
    let mut artificial_count = 0usize;
    // (relation after normalisation)
    let mut norm: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for c in lp.constraints() {
        let mut dense = vec![0.0; n];
        for &(v, a) in &c.coeffs {
            dense[v] += a;
        }
        let (mut rel, mut rhs) = (c.relation, c.rhs);
        if rhs < 0.0 {
            for a in dense.iter_mut() {
                *a = -*a;
            }
            rhs = -rhs;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match rel {
            Relation::Le => slack_count += 1,
            Relation::Ge => {
                slack_count += 1;
                artificial_count += 1;
            }
            Relation::Eq => artificial_count += 1,
        }
        norm.push((dense, rel, rhs));
    }

    let cols = n + slack_count + artificial_count;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    let mut next_slack = n;
    let mut next_art = n + slack_count;
    let art_start = n + slack_count;
    for (r, (dense, rel, rhs)) in norm.iter().enumerate() {
        let mut row = vec![0.0; cols + 1];
        row[..n].copy_from_slice(dense);
        row[cols] = *rhs;
        match rel {
            Relation::Le => {
                row[next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                row[next_slack] = -1.0;
                next_slack += 1;
                row[next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                row[next_art] = 1.0;
                basis[r] = next_art;
                next_art += 1;
            }
        }
        rows.push(row);
    }

    let mut t = Tableau {
        rows,
        cost: vec![0.0; cols + 1],
        basis,
        cols,
    };

    if artificial_count > 0 {
        // Phase 1: minimise sum of artificials. cost = sum of rows whose
        // basic variable is artificial, negated into reduced-cost form.
        for a in art_start..cols {
            t.cost[a] = 1.0;
        }
        // price out the basic artificials
        for r in 0..m {
            if t.basis[r] >= art_start {
                let row = t.rows[r].clone();
                for (c, v) in t.cost.iter_mut().zip(&row) {
                    *c -= v;
                }
            }
        }
        match t.optimize(cols)? {
            true => {}
            false => {
                // Phase-1 objective is bounded below by 0; "unbounded" here
                // means numerical trouble.
                return Err(LpError::BadInput("phase 1 reported unbounded".into()));
            }
        }
        let phase1 = -t.cost[cols]; // cost row holds -(objective)
        if phase1 > 1e-7 {
            return Ok(LpOutcome::Infeasible);
        }
        // Drive any remaining artificial out of the basis if possible.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let col = (0..art_start).find(|&c| t.rows[r][c].abs() > EPS);
                if let Some(c) = col {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is all-zero
                // (redundant constraint) and can stay.
            }
        }
    }

    // Phase 2: minimise -objective over columns excluding artificials.
    let mut cost = vec![0.0; cols + 1];
    for (v, &c) in lp.objective().iter().enumerate() {
        cost[v] = -c;
    }
    // forbid artificials from re-entering by leaving their cost at 0 and
    // restricting the active column range
    t.cost = cost;
    // price out basic variables
    for r in 0..m {
        let b = t.basis[r];
        let factor = t.cost[b];
        if factor.abs() > EPS {
            let row = t.rows[r].clone();
            for (c, v) in t.cost.iter_mut().zip(&row) {
                *c -= factor * v;
            }
            t.cost[b] = 0.0;
        }
    }
    match t.optimize(art_start)? {
        true => {}
        false => return Ok(LpOutcome::Unbounded),
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rows[r][cols];
        }
    }
    let objective: f64 = lp.objective().iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(LpOutcome::Optimal(LpSolution { objective, x }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearProgram;

    #[test]
    fn rejects_nan_inputs() {
        let mut lp = LinearProgram::new(1);
        lp.add_le(vec![(0, f64::NAN)], 1.0);
        assert!(matches!(lp.solve(), Err(LpError::BadInput(_))));
        let mut lp2 = LinearProgram::new(1);
        lp2.add_le(vec![(0, 1.0)], f64::INFINITY);
        assert!(matches!(lp2.solve(), Err(LpError::BadInput(_))));
    }

    #[test]
    fn redundant_equality_rows_ok() {
        // x + y = 2 stated twice; max x → x=2
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.add_eq(vec![(0, 1.0), (1, 1.0)], 2.0);
        lp.add_eq(vec![(0, 1.0), (1, 1.0)], 2.0);
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => assert!((s.objective - 2.0).abs() < 1e-7),
            o => panic!("expected optimal, got {o:?}"),
        }
    }

    #[test]
    fn larger_random_feasible_lp() {
        // A diagonally dominant system that is trivially feasible:
        // x_i <= i+1 for 12 vars, maximize sum → sum_{1..=12} = 78
        let mut lp = LinearProgram::new(12);
        for i in 0..12 {
            lp.set_objective(i, 1.0);
            lp.add_le(vec![(i, 1.0)], (i + 1) as f64);
        }
        match lp.solve().unwrap() {
            LpOutcome::Optimal(s) => assert!((s.objective - 78.0).abs() < 1e-6),
            o => panic!("expected optimal, got {o:?}"),
        }
    }
}
