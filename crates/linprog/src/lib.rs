//! # dctopo-linprog
//!
//! A dense two-phase primal simplex solver for linear programs in the form
//!
//! ```text
//! maximize    cᵀ x
//! subject to  Aᵢ x {≤,=,≥} bᵢ   for each constraint i
//!             x ≥ 0
//! ```
//!
//! ## Role in the workspace
//!
//! The paper solves the maximum concurrent multi-commodity flow problem
//! with CPLEX. Our production path is the combinatorial FPTAS in
//! `dctopo-flow`; this crate provides the *exact* reference used to
//! cross-validate the FPTAS on small instances (tests and tiny
//! experiments), playing the role CPLEX plays in the paper.
//!
//! ## Scope and limitations
//!
//! * Dense tableau: memory is `O(m·(n+m))`. Fine for the ≲2,000-variable
//!   instances we cross-check; deliberately not a large-scale LP code.
//! * Bland's anti-cycling rule is enabled once stalling is detected, so
//!   termination is guaranteed at some cost in iteration count.

mod simplex;

pub use simplex::{LpError, LpOutcome, LpSolution};

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub coeffs: Vec<(usize, f64)>,
    /// Relation to the right-hand side.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: maximize `objective · x` subject to constraints and
/// `x ≥ 0`.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Create an LP with `num_vars` non-negative variables and an
    /// all-zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Set the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(
            var < self.objective.len(),
            "objective variable out of range"
        );
        self.objective[var] = coeff;
    }

    /// Add a constraint. Out-of-range variable indices panic.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) {
        for &(v, _) in &coeffs {
            assert!(
                v < self.objective.len(),
                "constraint variable {v} out of range"
            );
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
    }

    /// Convenience: `Σ coeffs ≤ rhs`.
    pub fn add_le(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add_constraint(coeffs, Relation::Le, rhs);
    }

    /// Convenience: `Σ coeffs = rhs`.
    pub fn add_eq(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add_constraint(coeffs, Relation::Eq, rhs);
    }

    /// Convenience: `Σ coeffs ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add_constraint(coeffs, Relation::Ge, rhs);
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Solve with the two-phase simplex method.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> LpSolution {
        match lp.solve().expect("solver error") {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  → x=2, y=6, obj=36
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 5.0);
        lp.add_le(vec![(0, 1.0)], 4.0);
        lp.add_le(vec![(1, 2.0)], 12.0);
        lp.add_le(vec![(0, 3.0), (1, 2.0)], 18.0);
        let s = optimal(&lp);
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // max x + y st x + y = 10, x >= 3, y >= 2 → obj = 10
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_eq(vec![(0, 1.0), (1, 1.0)], 10.0);
        lp.add_ge(vec![(0, 1.0)], 3.0);
        lp.add_ge(vec![(1, 1.0)], 2.0);
        let s = optimal(&lp);
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!(s.x[0] >= 3.0 - 1e-9 && s.x[1] >= 2.0 - 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_le(vec![(0, 1.0)], 1.0);
        lp.add_ge(vec![(0, 1.0)], 2.0);
        assert!(matches!(lp.solve().unwrap(), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // max x st x >= 0 (no upper bound)
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_ge(vec![(0, 1.0)], 0.0);
        assert!(matches!(lp.solve().unwrap(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalized() {
        // max x st -x >= -5  (i.e. x <= 5)
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_ge(vec![(0, -1.0)], -5.0);
        let s = optimal(&lp);
        assert!((s.objective - 5.0).abs() < 1e-7);
    }

    #[test]
    fn repeated_indices_summed() {
        // max x st (0.5 + 0.5)x <= 3
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_le(vec![(0, 0.5), (0, 0.5)], 3.0);
        let s = optimal(&lp);
        assert!((s.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // classic degenerate corner: several constraints through origin
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_le(vec![(0, 1.0), (1, -1.0)], 0.0);
        lp.add_le(vec![(0, -1.0), (1, 1.0)], 0.0);
        lp.add_le(vec![(0, 1.0), (1, 1.0)], 2.0);
        let s = optimal(&lp);
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LinearProgram::new(2);
        lp.add_eq(vec![(0, 1.0), (1, 1.0)], 4.0);
        lp.add_le(vec![(0, 1.0)], 3.0);
        let s = optimal(&lp);
        assert!((s.x[0] + s.x[1] - 4.0).abs() < 1e-7);
        assert!(s.x[0] <= 3.0 + 1e-9);
    }

    #[test]
    fn tiny_maxflow_as_lp() {
        // max-flow 0->2 on path 0-1-2 with caps 2 and 3 == 2.
        // vars: f01, f12; maximize f12 subject to conservation f01 = f12.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(1, 1.0);
        lp.add_le(vec![(0, 1.0)], 2.0);
        lp.add_le(vec![(1, 1.0)], 3.0);
        lp.add_eq(vec![(0, 1.0), (1, -1.0)], 0.0);
        let s = optimal(&lp);
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn solution_satisfies_all_constraints() {
        let mut lp = LinearProgram::new(3);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.set_objective(2, 1.0);
        lp.add_le(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 10.0);
        lp.add_ge(vec![(0, 1.0), (2, 1.0)], 2.0);
        lp.add_eq(vec![(1, 1.0), (2, -1.0)], 1.0);
        let s = optimal(&lp);
        let sum = s.x[0] + s.x[1] + s.x[2];
        assert!(sum <= 10.0 + 1e-7);
        assert!(s.x[0] + s.x[2] >= 2.0 - 1e-7);
        assert!((s.x[1] - s.x[2] - 1.0).abs() < 1e-7);
    }
}
