//! The serve request protocol: line-delimited JSON requests parsed into
//! typed queries, with typed error records and the canonical content /
//! structure keys the batch scheduler orders and groups by.
//!
//! ## Request shape
//!
//! One JSON object per line. A blank line flushes the current batch;
//! EOF drains whatever is in flight. Fields:
//!
//! * `"op"` — `"query"` (default), `"ping"`, or `"stats"`.
//! * `"id"` — optional number or string, echoed verbatim in the
//!   response (responses come back in arrival order, but ids make
//!   matching robust).
//! * `"degrade"` — array of degradation steps applied in order to the
//!   base topology, mirroring [`Degradation`]:
//!   `{"kind":"fail-links","count":N,"seed":S}`,
//!   `{"kind":"fail-switches","count":N,"seed":S}`,
//!   `{"kind":"scale-capacity","factor":F}`,
//!   `{"kind":"line-card-mix","fraction":F,"factor":G,"seed":S}`.
//! * `"drift"` — `{"spread":F,"seed":S}` with `0 ≤ F < 1`: multiply
//!   each switch-level commodity's demand by a deterministic
//!   per-commodity factor in `(1-F, 1+F]` (see
//!   [`QuerySpec::drift_factor`]).
//! * `"backend"` — `"fptas"` (default), `"fptas-strict"`, `"exact"`,
//!   or `"ksp:K"` (the CLI's backend syntax).
//! * `"warm"` — override the server's warm-start default for this
//!   query.
//!
//! Unknown top-level fields and unknown degradation kinds are typed
//! `bad-request` errors — a closed protocol catches typos instead of
//! silently ignoring them.

use dctopo_core::Degradation;
use dctopo_flow::Backend;

use crate::json::Json;

/// A typed protocol-level error: the `kind` becomes the response's
/// `error.kind` field.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The line was not a JSON object at all.
    Malformed(String),
    /// The line was JSON but not a valid request.
    BadRequest(String),
}

impl ProtoError {
    /// Stable machine-readable kind string.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoError::Malformed(_) => "malformed",
            ProtoError::BadRequest(_) => "bad-request",
        }
    }

    /// Human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ProtoError::Malformed(m) | ProtoError::BadRequest(m) => m,
        }
    }
}

/// Demand drift: each commodity's demand is scaled by a deterministic
/// per-commodity factor in `(1 - spread, 1 + spread]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Drift {
    /// Half-width of the drift band, in `[0, 1)`.
    pub spread: f64,
    /// Seed deriving the per-commodity factors.
    pub seed: u64,
}

/// One parsed what-if query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpec {
    /// Degradations applied in order to the base topology.
    pub degradations: Vec<Degradation>,
    /// Optional demand drift.
    pub drift: Option<Drift>,
    /// Backend override `(backend, strict_reference)`; `None` keeps
    /// the server default.
    pub backend: Option<(Backend, bool)>,
    /// Warm-start override; `None` keeps the server default.
    pub warm: Option<bool>,
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A what-if throughput query.
    Query(Box<QuerySpec>),
    /// Liveness probe; answered with `{"pong":true}`.
    Ping,
    /// Server counters snapshot (as of the start of the batch, so
    /// responses stay arrival-order-invariant).
    Stats,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed id (number or string), if any.
    pub id: Option<Json>,
    /// The requested operation.
    pub op: Op,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line).map_err(ProtoError::Malformed)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtoError::Malformed("request is not a JSON object".into()));
        }
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j @ (Json::Num(_) | Json::Str(_))) => Some(j.clone()),
            Some(_) => {
                return Err(ProtoError::BadRequest(
                    "\"id\" must be a number or string".into(),
                ))
            }
        };
        let op = match v.get("op") {
            None => "query",
            Some(j) => j
                .as_str()
                .ok_or_else(|| ProtoError::BadRequest("\"op\" must be a string".into()))?,
        };
        for key in v.keys() {
            if !matches!(key, "id" | "op" | "degrade" | "drift" | "backend" | "warm") {
                return Err(ProtoError::BadRequest(format!("unknown field \"{key}\"")));
            }
        }
        let op = match op {
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "query" => Op::Query(Box::new(parse_query(&v)?)),
            other => return Err(ProtoError::BadRequest(format!("unknown op \"{other}\""))),
        };
        if !matches!(op, Op::Query(_)) {
            for key in v.keys() {
                if matches!(key, "degrade" | "drift" | "backend" | "warm") {
                    return Err(ProtoError::BadRequest(format!(
                        "field \"{key}\" is only valid on queries"
                    )));
                }
            }
        }
        Ok(Request { id, op })
    }
}

fn field_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, ProtoError> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| {
        ProtoError::BadRequest(format!("{ctx}: \"{key}\" must be a non-negative integer"))
    })
}

fn field_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, ProtoError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtoError::BadRequest(format!("{ctx}: \"{key}\" must be a number")))
}

fn check_keys(obj: &Json, allowed: &[&str], ctx: &str) -> Result<(), ProtoError> {
    for key in obj.keys() {
        if !allowed.contains(&key) {
            return Err(ProtoError::BadRequest(format!(
                "{ctx}: unknown field \"{key}\""
            )));
        }
    }
    Ok(())
}

fn parse_query(v: &Json) -> Result<QuerySpec, ProtoError> {
    let mut spec = QuerySpec::default();
    if let Some(degrade) = v.get("degrade") {
        let steps = degrade
            .as_arr()
            .ok_or_else(|| ProtoError::BadRequest("\"degrade\" must be an array".into()))?;
        for step in steps {
            let kind = step.get("kind").and_then(Json::as_str).ok_or_else(|| {
                ProtoError::BadRequest("degradation needs a \"kind\" string".into())
            })?;
            let d = match kind {
                "fail-links" => {
                    check_keys(step, &["kind", "count", "seed"], kind)?;
                    Degradation::FailLinks {
                        count: field_u64(step, "count", kind)? as usize,
                        seed: field_u64(step, "seed", kind)?,
                    }
                }
                "fail-switches" => {
                    check_keys(step, &["kind", "count", "seed"], kind)?;
                    Degradation::FailSwitches {
                        count: field_u64(step, "count", kind)? as usize,
                        seed: field_u64(step, "seed", kind)?,
                    }
                }
                "scale-capacity" => {
                    check_keys(step, &["kind", "factor"], kind)?;
                    Degradation::ScaleCapacity {
                        factor: field_f64(step, "factor", kind)?,
                    }
                }
                "line-card-mix" => {
                    check_keys(step, &["kind", "fraction", "factor", "seed"], kind)?;
                    Degradation::LineCardMix {
                        fraction: field_f64(step, "fraction", kind)?,
                        factor: field_f64(step, "factor", kind)?,
                        seed: field_u64(step, "seed", kind)?,
                    }
                }
                other => {
                    return Err(ProtoError::BadRequest(format!(
                        "unknown degradation kind \"{other}\""
                    )))
                }
            };
            spec.degradations.push(d);
        }
    }
    if let Some(drift) = v.get("drift") {
        check_keys(drift, &["spread", "seed"], "drift")?;
        let spread = field_f64(drift, "spread", "drift")?;
        if !(0.0..1.0).contains(&spread) {
            return Err(ProtoError::BadRequest(format!(
                "drift: \"spread\" {spread} not in [0, 1)"
            )));
        }
        spec.drift = Some(Drift {
            spread,
            seed: field_u64(drift, "seed", "drift")?,
        });
    }
    if let Some(backend) = v.get("backend") {
        let name = backend
            .as_str()
            .ok_or_else(|| ProtoError::BadRequest("\"backend\" must be a string".into()))?;
        spec.backend = Some(
            parse_backend(name)
                .ok_or_else(|| ProtoError::BadRequest(format!("unknown backend \"{name}\"")))?,
        );
    }
    if let Some(warm) = v.get("warm") {
        spec.warm = Some(
            warm.as_bool()
                .ok_or_else(|| ProtoError::BadRequest("\"warm\" must be a boolean".into()))?,
        );
    }
    Ok(spec)
}

/// Parse the CLI's backend syntax: `fptas` | `fptas-strict` | `exact` |
/// `ksp:K`. Returns `(backend, strict_reference)`.
pub fn parse_backend(s: &str) -> Option<(Backend, bool)> {
    match s {
        "fptas" => Some((Backend::Fptas, false)),
        "fptas-strict" => Some((Backend::Fptas, true)),
        "exact" => Some((Backend::ExactLp, false)),
        _ => {
            let k: usize = s.strip_prefix("ksp:")?.parse().ok()?;
            (k > 0).then_some((Backend::KspRestricted { k }, false))
        }
    }
}

/// Display name for a backend choice (the response's `backend` field).
pub fn backend_name(backend: Backend, strict: bool) -> String {
    match backend {
        Backend::Fptas if strict => "fptas-strict".into(),
        Backend::Fptas => "fptas".into(),
        Backend::ExactLp => "exact".into(),
        Backend::KspRestricted { k } => format!("ksp:{k}"),
    }
}

// ---- canonical keys ------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, x: f64) {
    push_u64(out, x.to_bits());
}

fn push_degradations(out: &mut Vec<u8>, degradations: &[Degradation]) {
    for d in degradations {
        match *d {
            Degradation::FailLinks { count, seed } => {
                out.push(1);
                push_u64(out, count as u64);
                push_u64(out, seed);
            }
            Degradation::FailSwitches { count, seed } => {
                out.push(2);
                push_u64(out, count as u64);
                push_u64(out, seed);
            }
            Degradation::ScaleCapacity { factor } => {
                out.push(3);
                push_f64(out, factor);
            }
            Degradation::LineCardMix {
                fraction,
                factor,
                seed,
            } => {
                out.push(4);
                push_f64(out, fraction);
                push_f64(out, factor);
                push_u64(out, seed);
            }
        }
    }
}

impl QuerySpec {
    /// The query's **structure key**: a digest of the degradation
    /// recipe alone. Queries sharing it are solved against the same
    /// scenario view (applied once per batch) and share one warm-state
    /// slot — drift and backend variations of one scenario reuse each
    /// other's learned lengths. A collision merely pools unrelated
    /// warm slots: warm-starting is certified-sound from *any*
    /// previous length state, so correctness is unaffected.
    pub fn structure_key(&self) -> u64 {
        let mut bytes = Vec::new();
        push_degradations(&mut bytes, &self.degradations);
        fnv1a(&bytes)
    }

    /// The query's **canonical content encoding**: every
    /// result-relevant field (degradations, drift, backend, warm), and
    /// nothing else (ids are excluded). Batch evaluation sorts queries
    /// lexicographically by this encoding, which is what makes
    /// responses invariant under permuted arrival order: two
    /// arrival-permuted batches contain the same multiset of
    /// encodings, hence evaluate in the same canonical order against
    /// the same batch-start state.
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        push_degradations(&mut bytes, &self.degradations);
        bytes.push(0xfe);
        if let Some(d) = self.drift {
            push_f64(&mut bytes, d.spread);
            push_u64(&mut bytes, d.seed);
        }
        bytes.push(0xfd);
        if let Some((backend, strict)) = self.backend {
            bytes.extend_from_slice(backend_name(backend, strict).as_bytes());
        }
        bytes.push(0xfc);
        match self.warm {
            None => bytes.push(2),
            Some(w) => bytes.push(w as u8),
        }
        bytes
    }

    /// The deterministic per-commodity drift factor for a
    /// `(src, dst)` switch pair under `drift`: `1 + spread·(2u − 1)`
    /// with `u ∈ [0, 1)` derived from a splitmix64 of the seed and the
    /// pair. Order-independent (each commodity's factor depends only
    /// on its endpoints), so drifted demand is identical however the
    /// commodity list is produced.
    pub fn drift_factor(drift: Drift, src: usize, dst: usize) -> f64 {
        let mut key = Vec::with_capacity(16);
        push_u64(&mut key, src as u64);
        push_u64(&mut key, dst as u64);
        let u = (splitmix64(drift.seed ^ fnv1a(&key)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        1.0 + drift.spread * (2.0 * u - 1.0)
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_query() {
        let r = Request::parse(
            r#"{"id":3,"op":"query","degrade":[{"kind":"fail-links","count":2,"seed":9},{"kind":"scale-capacity","factor":0.5}],"drift":{"spread":0.2,"seed":7},"backend":"ksp:4","warm":false}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(Json::Num(3.0)));
        let Op::Query(q) = r.op else {
            panic!("not a query")
        };
        assert_eq!(
            q.degradations,
            vec![
                Degradation::FailLinks { count: 2, seed: 9 },
                Degradation::ScaleCapacity { factor: 0.5 },
            ]
        );
        assert_eq!(
            q.drift,
            Some(Drift {
                spread: 0.2,
                seed: 7
            })
        );
        assert_eq!(q.backend, Some((Backend::KspRestricted { k: 4 }, false)));
        assert_eq!(q.warm, Some(false));
    }

    #[test]
    fn default_op_is_query_and_baseline() {
        let r = Request::parse("{}").unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.op, Op::Query(Box::default()));
    }

    #[test]
    fn typed_errors_by_kind() {
        let cases = [
            ("not json at all", "malformed"),
            ("[1,2]", "malformed"),
            (r#"{"op":"frobnicate"}"#, "bad-request"),
            (r#"{"unknown_field":1}"#, "bad-request"),
            (r#"{"degrade":[{"kind":"melt"}]}"#, "bad-request"),
            (
                r#"{"degrade":[{"kind":"fail-links","count":-1,"seed":0}]}"#,
                "bad-request",
            ),
            (r#"{"drift":{"spread":1.5,"seed":0}}"#, "bad-request"),
            (r#"{"backend":"gurobi"}"#, "bad-request"),
            (r#"{"id":[1]}"#, "bad-request"),
            (r#"{"op":"ping","warm":true}"#, "bad-request"),
            (r#"{"warm":"yes"}"#, "bad-request"),
            (
                r#"{"degrade":[{"kind":"fail-links","count":1,"seed":0,"extra":1}]}"#,
                "bad-request",
            ),
        ];
        for (line, kind) in cases {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.kind(), kind, "{line}");
        }
    }

    #[test]
    fn content_bytes_ignore_id_and_distinguish_content() {
        let parse = |line: &str| match Request::parse(line).unwrap().op {
            Op::Query(q) => *q,
            _ => panic!("not a query"),
        };
        let a = parse(r#"{"id":1,"degrade":[{"kind":"fail-links","count":2,"seed":9}]}"#);
        let b = parse(r#"{"id":"other","degrade":[{"kind":"fail-links","count":2,"seed":9}]}"#);
        assert_eq!(a.content_bytes(), b.content_bytes());
        assert_eq!(a.structure_key(), b.structure_key());
        let c = parse(r#"{"degrade":[{"kind":"fail-links","count":3,"seed":9}]}"#);
        assert_ne!(a.content_bytes(), c.content_bytes());
        assert_ne!(a.structure_key(), c.structure_key());
        // drift changes content but not structure
        let d = parse(
            r#"{"degrade":[{"kind":"fail-links","count":2,"seed":9}],"drift":{"spread":0.1,"seed":4}}"#,
        );
        assert_ne!(a.content_bytes(), d.content_bytes());
        assert_eq!(a.structure_key(), d.structure_key());
    }

    #[test]
    fn drift_factors_stay_in_band_and_are_deterministic() {
        let drift = Drift {
            spread: 0.3,
            seed: 99,
        };
        for src in 0..20 {
            for dst in 0..20 {
                if src == dst {
                    continue;
                }
                let f = QuerySpec::drift_factor(drift, src, dst);
                assert!(f > 0.7 && f <= 1.3, "factor {f} out of band");
                assert_eq!(
                    f.to_bits(),
                    QuerySpec::drift_factor(drift, src, dst).to_bits()
                );
            }
        }
        // factors actually vary across pairs
        let a = QuerySpec::drift_factor(drift, 0, 1);
        let b = QuerySpec::drift_factor(drift, 1, 2);
        assert_ne!(a.to_bits(), b.to_bits());
    }
}
