//! # dctopo-serve
//!
//! Throughput-as-a-service: a long-running server process owning
//! sharded engine state — the base [`dctopo_graph::CsrNet`] (inside a
//! [`dctopo_core::ThroughputEngine`]), the shared path-set cache, and
//! persistent FPTAS warm state — answering **batched** what-if queries
//! (link/switch failures, capacity re-rates, traffic-drift deltas)
//! over a line-delimited JSON protocol on stdin/stdout. Entirely
//! offline-hermetic: no sockets, no new dependencies, JSON hand-rolled
//! in [`json`].
//!
//! ## Protocol (one JSON object per line)
//!
//! ```text
//! {"id":1,"degrade":[{"kind":"fail-links","count":8,"seed":3}]}
//! {"id":2,"degrade":[{"kind":"scale-capacity","factor":0.5}],
//!  "drift":{"spread":0.1,"seed":7},"backend":"fptas","warm":true}
//! {"id":3,"op":"ping"}
//! {"id":4,"op":"stats"}
//! <blank line flushes the batch; EOF drains the in-flight batch>
//! ```
//!
//! Responses come back one line per request, in arrival order, ids
//! echoed. A malformed or invalid line produces a typed error record
//! (`{"id":…,"ok":false,"error":{"kind":…,"message":…}}`) — the server
//! never exits on bad input. See [`server`] for the batch evaluation
//! model and the determinism contract, and [`proto`] for the full
//! request grammar.

#![warn(missing_docs)]

pub use dctopo_obs::json;
pub mod proto;
pub mod server;

pub use json::Json;
pub use proto::{backend_name, parse_backend, Drift, Op, ProtoError, QuerySpec, Request};
pub use server::{ServeConfig, ServeStats, Server};
