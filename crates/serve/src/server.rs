//! The serve engine: a long-running [`Server`] owning sharded engine
//! state — the base `CsrNet` (inside a [`ThroughputEngine`]), the
//! shared path-set cache, and a per-structure store of persistent FPTAS
//! length state — answering batched what-if queries.
//!
//! ## Batch evaluation model
//!
//! Requests accumulate until a blank line (or EOF) flushes the batch.
//! A batch is evaluated as one deterministic transaction:
//!
//! 1. Every line parses to a typed request (or a typed error record —
//!    a malformed line never kills the server or the batch).
//! 2. Queries are sorted into **canonical order** (lexicographic by
//!    their [`QuerySpec::content_bytes`] encoding, ids excluded) and
//!    grouped by [`QuerySpec::structure_key`]; each distinct structure
//!    applies its scenario and lowers its surviving demand **once**.
//! 3. All queries evaluate in parallel on the persistent worker pool
//!    (`DCTOPO_THREADS` caps the fan-out — the admission control).
//!    Every warm-eligible query reads the **batch-start** warm
//!    snapshot of its structure slot; warm state is never chained
//!    *within* a batch.
//! 4. The warm store commits at the batch boundary, walking results in
//!    canonical order (last writer per structure wins).
//! 5. Responses are emitted in **arrival order**, ids echoed.
//!
//! Steps 2–4 are what make the responses **bit-identical under
//! permuted arrival order and at any thread count**: the multiset of
//! canonical encodings (and the batch-start warm snapshot) fully
//! determines every response and the committed warm store, and each
//! individual solve is itself thread-invariant by the workspace's
//! determinism contract.
//!
//! ## Warm-start validity
//!
//! Warm slots hold [`WarmState`] terminal lengths keyed by structure.
//! Reusing them is certified-sound no matter what produced them (the
//! FPTAS dual bound holds for *any* positive lengths — see
//! [`WarmState`]); only the default FPTAS fast path consumes them.
//! `fptas-strict`, `exact`, and `ksp:K` queries always run their
//! pinned cold paths and answer **bitwise identically** to a one-shot
//! [`ThroughputEngine::solve_scenario`], as does any query with
//! `"warm":false`.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

use dctopo_core::{Degradation, Scenario, ThroughputEngine, ThroughputResult, WarmState};
use dctopo_flow::FlowError;
use dctopo_flow::FlowOptions;
use dctopo_graph::GraphError;
use dctopo_obs as obs;
use dctopo_topology::Topology;
use dctopo_traffic::TrafficMatrix;
use rayon::prelude::*;

use crate::json::Json;
use crate::proto::{backend_name, Op, ProtoError, QuerySpec, Request};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Solver options queries run with (backend overridable per
    /// request).
    pub opts: FlowOptions,
    /// Whether warm-eligible queries warm-start by default (per-query
    /// `"warm"` overrides).
    pub warm_default: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            opts: FlowOptions::fast(),
            warm_default: true,
        }
    }
}

/// Deterministic server counters (everything here is invariant under
/// arrival order and thread count; the shared path-set cache's
/// hit/miss counters are deliberately *not* included because cache
/// race interleaving makes them schedule-dependent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches flushed.
    pub batches: u64,
    /// Query requests evaluated (including ones that returned typed
    /// errors).
    pub queries: u64,
    /// Error records emitted (parse errors + query errors).
    pub errors: u64,
    /// Warm-eligible queries that found a seeded warm slot.
    pub warm_hits: u64,
    /// Warm-eligible queries that started cold (no slot yet).
    pub warm_misses: u64,
}

/// A long-running throughput-query server over one topology + traffic
/// matrix. See the module docs for the evaluation model.
#[derive(Debug)]
pub struct Server<'t> {
    engine: ThroughputEngine<'t>,
    tm: TrafficMatrix,
    cfg: ServeConfig,
    /// Per-structure warm slots, committed only at batch boundaries.
    warm: HashMap<u64, WarmState>,
    stats: ServeStats,
}

/// Everything one evaluated query produces: the response payload
/// (without the echoed id) plus the warm state to commit.
struct QueryOut {
    payload: Json,
    is_error: bool,
    warm_used: bool,
    warm_eligible: bool,
    warm_out: Option<WarmState>,
    /// Solve wall clock (µs, 0 when tracing is off) — trace-only.
    wall_us: u64,
}

/// One parsed line of a batch, mapped back to its arrival slot.
enum Slot {
    Bad(Option<Json>, ProtoError),
    Ping(Option<Json>),
    Stats(Option<Json>),
    /// Query at index `qi` of the batch's query list.
    Query(Option<Json>, usize),
}

impl<'t> Server<'t> {
    /// Build a server over `topo` carrying `tm` as the base demand.
    pub fn new(topo: &'t Topology, tm: TrafficMatrix, cfg: ServeConfig) -> Self {
        Server {
            engine: ThroughputEngine::new(topo),
            tm,
            cfg,
            warm: HashMap::new(),
            stats: ServeStats::default(),
        }
    }

    /// The deterministic counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of structure slots currently holding warm state.
    pub fn warm_slots(&self) -> usize {
        self.warm.len()
    }

    /// The underlying engine (e.g. for path-cache inspection).
    pub fn engine(&self) -> &ThroughputEngine<'t> {
        &self.engine
    }

    /// Evaluate one batch of request lines, returning one response
    /// line per request **in arrival order**.
    pub fn serve_batch(&mut self, lines: &[String]) -> Vec<String> {
        let t_batch = obs::clock();
        // stats are snapshotted *before* the batch so a `stats`
        // request's answer cannot depend on its position in the batch
        // (the trace event count likewise: cumulative emission counts
        // are sums over deterministic per-solve counts, so the
        // snapshot is transcript-determined even though parallel
        // queries interleave their emissions)
        let pre_stats = self.stats;
        let pre_slots = self.warm.len();
        let pre_events = obs::event_count();

        // ---- parse (arrival order) ----
        let mut slots: Vec<Slot> = Vec::with_capacity(lines.len());
        let mut queries: Vec<QuerySpec> = Vec::new();
        for line in lines {
            match Request::parse(line) {
                Err(e) => slots.push(Slot::Bad(None, e)),
                Ok(Request { id, op }) => match op {
                    Op::Ping => slots.push(Slot::Ping(id)),
                    Op::Stats => slots.push(Slot::Stats(id)),
                    Op::Query(q) => {
                        slots.push(Slot::Query(id, queries.len()));
                        queries.push(*q);
                    }
                },
            }
        }

        // ---- canonical order + per-structure lowering ----
        let encodings: Vec<Vec<u8>> = queries.iter().map(QuerySpec::content_bytes).collect();
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by(|&a, &b| encodings[a].cmp(&encodings[b]));

        // apply each distinct scenario once and lower its demand once;
        // iteration in canonical order keeps everything deterministic
        struct Structure {
            applied: Result<dctopo_core::AppliedScenario, GraphError>,
            demand: Option<(Vec<dctopo_flow::Commodity>, f64, usize)>,
        }
        let mut structures: HashMap<u64, Structure> = HashMap::new();
        for &qi in &order {
            let skey = queries[qi].structure_key();
            structures.entry(skey).or_insert_with(|| {
                let sc = scenario_of(&queries[qi].degradations);
                let applied = sc.apply(self.engine.topology(), self.engine.net());
                let demand = applied
                    .as_ref()
                    .ok()
                    .map(|a| self.engine.scenario_demand(a, &self.tm));
                Structure { applied, demand }
            });
        }

        // ---- parallel evaluation against the batch-start snapshot ----
        let engine = &self.engine;
        let cfg = self.cfg;
        let warm_store = &self.warm;
        let queries_ref = &queries;
        let order_ref = &order;
        let structures_ref = &structures;
        let mut evals: Vec<QueryOut> = (0..order.len())
            .into_par_iter()
            .map(|ci| {
                let qi = order_ref[ci];
                let spec = &queries_ref[qi];
                let skey = spec.structure_key();
                let s = &structures_ref[&skey];
                eval_query(
                    engine,
                    cfg,
                    spec,
                    skey,
                    s.applied.as_ref(),
                    s.demand.as_ref(),
                    warm_store.get(&skey),
                )
            })
            .collect();

        // ---- commit: counters, then warm slots in canonical order ----
        self.stats.batches += 1;
        self.stats.queries += queries.len() as u64;
        for slot in &slots {
            if matches!(slot, Slot::Bad(..)) {
                self.stats.errors += 1;
            }
        }
        for out in &evals {
            if out.is_error {
                self.stats.errors += 1;
            }
            if out.warm_eligible {
                if out.warm_used {
                    self.stats.warm_hits += 1;
                } else {
                    self.stats.warm_misses += 1;
                }
            }
        }
        // canonical-order commit: last writer per structure wins, so
        // the committed store is arrival-order-invariant too
        let mut by_query: Vec<Option<Json>> = Vec::with_capacity(evals.len());
        by_query.resize_with(queries.len(), || None);
        for (ci, out) in evals.drain(..).enumerate() {
            let qi = order[ci];
            // trace emission in canonical order: the event sequence is
            // a pure function of the batch transcript, never of
            // scheduling — only the wall clock in the nd section
            // carries scheduling noise
            if obs::enabled() {
                obs::Event::new("serve_query")
                    .field("canonical", ci as u64)
                    .field("arrival", qi as u64)
                    .field("ok", !out.is_error)
                    .field("warm", out.warm_used)
                    .field("structure", format!("{:016x}", queries[qi].structure_key()))
                    .nd("wall_us", out.wall_us)
                    .emit();
            }
            if let Some(state) = out.warm_out {
                self.warm.insert(queries[qi].structure_key(), state);
            }
            by_query[qi] = Some(out.payload);
        }
        if obs::enabled() {
            obs::Event::new("serve_batch")
                .field("batch", self.stats.batches)
                .field("requests", lines.len())
                .field("queries", queries.len())
                .field("errors", self.stats.errors - pre_stats.errors)
                .field("warm_hits", self.stats.warm_hits - pre_stats.warm_hits)
                .field(
                    "warm_misses",
                    self.stats.warm_misses - pre_stats.warm_misses,
                )
                .field("warm_slots", self.warm.len())
                .nd("wall_us", obs::us_since(t_batch))
                .emit();
        }

        // ---- responses in arrival order ----
        slots
            .into_iter()
            .map(|slot| {
                let (id, payload) = match slot {
                    Slot::Bad(id, e) => (id, error_payload(e.kind(), e.message())),
                    Slot::Ping(id) => (
                        id,
                        Json::Obj(vec![
                            ("ok".into(), Json::Bool(true)),
                            ("pong".into(), Json::Bool(true)),
                        ]),
                    ),
                    Slot::Stats(id) => (id, stats_payload(pre_stats, pre_slots, pre_events)),
                    Slot::Query(id, qi) => {
                        (id, by_query[qi].take().expect("every query evaluated"))
                    }
                };
                let mut fields = vec![("id".into(), id.unwrap_or(Json::Null))];
                match payload {
                    Json::Obj(rest) => fields.extend(rest),
                    other => fields.push(("payload".into(), other)),
                }
                Json::Obj(fields).to_string()
            })
            .collect()
    }

    /// Drive the server over a line-delimited stream: requests
    /// accumulate per batch, a blank line flushes, EOF drains the
    /// in-flight batch, responses go to `out` one line each (flushed
    /// per batch). Returns the final counters.
    ///
    /// # Errors
    /// Propagates I/O errors from the reader or writer.
    pub fn run<R: BufRead, W: Write>(&mut self, reader: R, mut out: W) -> io::Result<ServeStats> {
        obs::auto_init();
        let mut batch: Vec<String> = Vec::new();
        let flush = |server: &mut Self, batch: &mut Vec<String>, out: &mut W| -> io::Result<()> {
            if batch.is_empty() {
                return Ok(());
            }
            for line in server.serve_batch(batch) {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
            batch.clear();
            Ok(())
        };
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                flush(self, &mut batch, &mut out)?;
            } else {
                batch.push(line);
            }
        }
        // EOF shutdown drains the in-flight batch
        flush(self, &mut batch, &mut out)?;
        Ok(self.stats)
    }
}

/// A display name for an ad-hoc degradation recipe.
fn scenario_of(degradations: &[Degradation]) -> Scenario {
    let name = if degradations.is_empty() {
        "baseline".to_string()
    } else {
        degradations
            .iter()
            .map(|d| match d {
                Degradation::FailLinks { count, .. } => format!("fail-links:{count}"),
                Degradation::FailSwitches { count, .. } => format!("fail-switches:{count}"),
                Degradation::ScaleCapacity { factor } => format!("scale:{factor}"),
                Degradation::LineCardMix {
                    fraction, factor, ..
                } => {
                    format!("mix:{fraction}x{factor}")
                }
            })
            .collect::<Vec<_>>()
            .join("+")
    };
    Scenario::new(name, degradations.to_vec())
}

fn error_payload(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(kind.into())),
                ("message".into(), Json::Str(message.into())),
            ]),
        ),
    ])
}

fn stats_payload(stats: ServeStats, warm_slots: usize, events: u64) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        (
            "stats".into(),
            Json::Obj(vec![
                ("batches".into(), Json::Num(stats.batches as f64)),
                ("queries".into(), Json::Num(stats.queries as f64)),
                ("errors".into(), Json::Num(stats.errors as f64)),
                ("warm_hits".into(), Json::Num(stats.warm_hits as f64)),
                ("warm_misses".into(), Json::Num(stats.warm_misses as f64)),
                ("warm_slots".into(), Json::Num(warm_slots as f64)),
                (
                    "trace".into(),
                    Json::Obj(vec![
                        ("enabled".into(), Json::Bool(obs::enabled())),
                        ("events".into(), Json::Num(events as f64)),
                    ]),
                ),
            ]),
        ),
    ])
}

fn graph_error_kind(e: &GraphError) -> &'static str {
    match e {
        GraphError::Unrealizable(_) => "unrealizable",
        GraphError::BadCapacity { .. } => "bad-capacity",
        _ => "graph",
    }
}

fn flow_error_kind(e: &FlowError) -> &'static str {
    match e {
        FlowError::Unreachable { .. } => "unreachable",
        _ => "solver",
    }
}

fn result_payload(
    r: &ThroughputResult,
    warm_used: bool,
    skey: u64,
    backend: &str,
    flows: usize,
) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("throughput".into(), Json::num(r.throughput)),
        ("network_lambda".into(), Json::num(r.network_lambda)),
        ("upper_bound".into(), Json::num(r.network_upper_bound)),
        ("nic_limit".into(), Json::num(r.nic_limit)),
        ("flows".into(), Json::Num(flows as f64)),
        ("commodities".into(), Json::Num(r.commodities.len() as f64)),
        (
            "phases".into(),
            Json::Num(r.solved.as_ref().map_or(0, |s| s.phases) as f64),
        ),
        ("warm".into(), Json::Bool(warm_used)),
        ("structure".into(), Json::Str(format!("{skey:016x}"))),
        ("backend".into(), Json::Str(backend.into())),
    ])
}

#[allow(clippy::too_many_arguments)]
fn eval_query(
    engine: &ThroughputEngine<'_>,
    cfg: ServeConfig,
    spec: &QuerySpec,
    skey: u64,
    applied: Result<&dctopo_core::AppliedScenario, &GraphError>,
    demand: Option<&(Vec<dctopo_flow::Commodity>, f64, usize)>,
    warm_in: Option<&WarmState>,
) -> QueryOut {
    let t_query = obs::clock();
    let applied = match applied {
        Ok(a) => a,
        Err(e) => {
            return QueryOut {
                payload: error_payload(graph_error_kind(e), &e.to_string()),
                is_error: true,
                warm_used: false,
                warm_eligible: false,
                warm_out: None,
                wall_us: obs::us_since(t_query),
            }
        }
    };
    let (base_commodities, nic, flows) = demand.expect("demand lowered for applied scenarios");
    let mut commodities = base_commodities.clone();
    if let Some(drift) = spec.drift {
        for c in &mut commodities {
            c.demand *= QuerySpec::drift_factor(drift, c.src, c.dst);
        }
    }
    let mut opts = cfg.opts;
    if let Some((backend, strict)) = spec.backend {
        opts.backend = backend;
        opts.strict_reference = strict;
    }
    let eligible = matches!(opts.backend, dctopo_flow::Backend::Fptas) && !opts.strict_reference;
    let warm_requested = spec.warm.unwrap_or(cfg.warm_default);
    let warm = if eligible && warm_requested {
        warm_in.filter(|w| w.is_seeded())
    } else {
        None
    };
    let warm_used = warm.is_some();
    let backend = backend_name(opts.backend, opts.strict_reference);
    match engine.solve_commodities_warm(&applied.net, commodities, *nic, *flows, &opts, warm) {
        Ok((result, state)) => QueryOut {
            payload: result_payload(&result, warm_used, skey, &backend, *flows),
            is_error: false,
            warm_used,
            warm_eligible: eligible && warm_requested,
            warm_out: state.is_seeded().then_some(state),
            wall_us: obs::us_since(t_query),
        },
        Err(e) => QueryOut {
            payload: error_payload(flow_error_kind(&e), &e.to_string()),
            is_error: true,
            warm_used,
            warm_eligible: eligible && warm_requested,
            warm_out: None,
            wall_us: obs::us_since(t_query),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(topo: &Topology) -> Server<'_> {
        let mut rng = StdRng::seed_from_u64(42);
        let tm = TrafficMatrix::random_permutation(topo.server_count(), &mut rng);
        Server::new(topo, tm, ServeConfig::default())
    }

    fn topo() -> Topology {
        let mut rng = StdRng::seed_from_u64(7);
        Topology::random_regular(16, 8, 4, &mut rng).unwrap()
    }

    fn lines(ls: &[&str]) -> Vec<String> {
        ls.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn batch_answers_in_arrival_order_with_echoed_ids() {
        let t = topo();
        let mut s = server(&t);
        let out = s.serve_batch(&lines(&[
            r#"{"id":"b","op":"ping"}"#,
            r#"{"id":1}"#,
            r#"{"id":2,"op":"stats"}"#,
        ]));
        assert_eq!(out.len(), 3);
        assert!(out[0].starts_with(r#"{"id":"b""#) && out[0].contains("\"pong\":true"));
        assert!(out[1].starts_with(r#"{"id":1,"ok":true"#));
        assert!(out[2].starts_with(r#"{"id":2"#) && out[2].contains("\"stats\""));
    }

    #[test]
    fn malformed_lines_yield_typed_errors_not_crashes() {
        let t = topo();
        let mut s = server(&t);
        let out = s.serve_batch(&lines(&["} not json {", r#"{"id":5}"#]));
        let err = Json::parse(&out[0]).unwrap();
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            err.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("malformed")
        );
        // the good request in the same batch still answers
        let good = Json::parse(&out[1]).unwrap();
        assert_eq!(good.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(s.stats().errors, 1);
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn warm_store_fills_and_hits_across_batches() {
        let t = topo();
        let mut s = server(&t);
        let q = r#"{"degrade":[{"kind":"fail-links","count":2,"seed":3}]}"#;
        s.serve_batch(&lines(&[q]));
        assert_eq!(s.stats().warm_misses, 1);
        assert_eq!(s.warm_slots(), 1);
        let drifted = r#"{"degrade":[{"kind":"fail-links","count":2,"seed":3}],"drift":{"spread":0.1,"seed":9}}"#;
        let out = s.serve_batch(&lines(&[drifted]));
        assert_eq!(s.stats().warm_hits, 1);
        let v = Json::parse(&out[0]).unwrap();
        assert_eq!(v.get("warm").unwrap().as_bool(), Some(true));
        assert!(v.get("throughput").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn run_drains_final_batch_at_eof_without_blank_line() {
        let t = topo();
        let mut s = server(&t);
        let input = "{\"id\":1,\"op\":\"ping\"}\n\n{\"id\":2,\"op\":\"ping\"}";
        let mut out = Vec::new();
        let stats = s.run(io::Cursor::new(input), &mut out).unwrap();
        assert_eq!(stats.batches, 2, "EOF must flush the in-flight batch");
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("\"id\":2"));
    }
}
