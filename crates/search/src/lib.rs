//! # dctopo-search
//!
//! The topology **search engine**: deterministic, parallel local search
//! / simulated annealing over the data-center design space the paper
//! frames as an optimization problem (§1: "we propose that data center
//! network topology design be treated as an optimization problem").
//!
//! The paper's headline results are statements about this search space:
//! random regular graphs land within a few percent of the Theorem-1
//! throughput bound (so *structural* search should barely improve on an
//! RRG), while heterogeneous port/line-speed distribution leaves real
//! gains on the table (so *capacity* search should find them). This
//! crate makes both claims executable.
//!
//! ## Move families ([`moves`])
//!
//! * **Structural** — degree-preserving double-edge rewires
//!   ([`dctopo_topology::moves::TwoSwap`]) and Jellyfish-style
//!   [`dctopo_topology::expand::expand_random`] switch insertions.
//!   Every switch keeps its port budget; the capacity multiset is
//!   preserved by rewires.
//! * **Capacity** — line-speed budget reallocation across switch-class
//!   link groups ([`moves::CapacityPlan`]): multipliers per
//!   `(class, class)` group, shifted budget-preservingly between groups
//!   and applied as [`dctopo_graph::CsrNet::with_capacity_overrides`]
//!   delta views, so the base net's `structure_id` (and therefore the
//!   frozen path-set cache) stays warm across every candidate.
//!
//! ## The multi-fidelity ladder ([`ladder`])
//!
//! Certified solves are ~10⁴× the cost of a BFS sweep, so candidates
//! climb a ladder and only survivors pay for certification:
//!
//! 1. **Hop bound** (level 0) — the Theorem-1-style hard bound
//!    `C / Σ_j d_j·hop_j` from 64-lane batched multi-source BFS
//!    ([`ladder::hop_alpha`]).
//!    Structural candidates must *strictly improve* it.
//! 2. **Cut bound** (level 1) — `C̄ / crossing demand`
//!    ([`dctopo_bounds::demand_cut_bound`]) over fixed probe partitions
//!    ([`ladder::CutProbe`]): a candidate whose tightest cut bound
//!    cannot beat the incumbent's certified λ is pruned *soundly*.
//! 3. **Certified solve** (level 2) — the FPTAS / KSP backend selected
//!    by [`dctopo_flow::FlowOptions::backend`], warm-started through
//!    the shared path-set cache for capacity candidates.
//!
//! The gates are part of the acceptance semantics, not just an
//! optimisation: a move is accepted only if it passes every level
//! *and* strictly improves the certified λ. Running with
//! [`runner::Fidelity::CertifyAll`] certifies every valid candidate but
//! applies the same gates, so the accepted-move sequence — and the
//! final topology — is **identical** between the two modes; the ladder
//! only changes how much work rejection costs. `BENCH_search.json`
//! records the resulting speedup.
//!
//! ## Determinism contract
//!
//! Every random choice derives from [`runner::SearchSpec::seed`] and
//! grid coordinates (`(round, move index)` for moves, probe index for
//! cut probes) — never from evaluation order. Batches are evaluated on
//! the persistent worker pool with index-ordered assembly, and every
//! backend is itself bit-identical across thread counts, so a search
//! trajectory is **bit-identical at every thread count and across
//! reruns** (pinned by `tests/search_determinism.rs`).

#![warn(missing_docs)]

pub mod ladder;
pub mod moves;
pub mod runner;

pub use ladder::{hop_alpha, hop_bound, observed_aspl, CutProbe};
pub use moves::{CapacityPlan, MoveKind, ResolvedMove};
pub use runner::{
    AcceptedMove, CapacityBudget, Certificate, Fidelity, GrowSpec, Outcome, RoundTrace,
    SearchResult, SearchRunner, SearchSpec,
};

/// Mix grid coordinates into a master seed (splitmix64 finalizer), the
/// same discipline as the sweep engine: every per-move / per-probe RNG
/// is a function of the spec and its coordinates, never of scheduling.
pub(crate) fn derive_seed(base: u64, domain: u64, a: usize, b: usize) -> u64 {
    let mut z = base
        .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((a as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((b as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
