//! The search engine's move vocabulary: structural rewires, Jellyfish
//! expansions, and capacity-budget shifts, plus the [`CapacityPlan`]
//! bookkeeping that turns per-group line-speed multipliers into
//! [`CsrNet::with_capacity_overrides`] delta views.

use dctopo_graph::{ArcId, CsrNet, GraphError};
use dctopo_topology::moves::TwoSwap;
use dctopo_topology::Topology;

/// One candidate move, addressable as data so batches can be generated
/// from seeds, evaluated in parallel, and replayed on acceptance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveKind {
    /// Degree-preserving double-edge rewire (structural family).
    TwoSwap(TwoSwap),
    /// Jellyfish-style switch insertion via
    /// [`dctopo_topology::expand::expand_random`]: a new switch with
    /// `network_degree` ports, every one wired by donating existing
    /// links (growth family; no servers are attached, so the commodity
    /// set is unchanged).
    Expand {
        /// Network ports of the new switch (must be even).
        network_degree: usize,
        /// Switch class the new switch joins.
        class: usize,
    },
    /// Shift a slice of the line-speed budget from one class-pair link
    /// group to another (capacity family). `step` is the fraction of
    /// the donor group's *current* capacity that moves; the shift is
    /// budget-preserving by construction.
    ShiftCapacity {
        /// Donor link-group index (into [`CapacityPlan`] group order).
        donor: usize,
        /// Receiver link-group index.
        receiver: usize,
        /// Fraction of the donor's current capacity to move, in (0, 1).
        step: f64,
    },
}

impl MoveKind {
    /// Whether this move changes the adjacency structure (and therefore
    /// invalidates structure-keyed caches).
    pub fn is_structural(&self) -> bool {
        !matches!(self, MoveKind::ShiftCapacity { .. })
    }

    /// Short display form for traces and CLI output.
    pub fn describe(&self) -> String {
        match self {
            MoveKind::TwoSwap(s) => {
                format!("two-swap({}, {}, cross={})", s.e1, s.e2, s.cross)
            }
            MoveKind::Expand {
                network_degree,
                class,
            } => {
                format!("expand(degree={network_degree}, class={class})")
            }
            MoveKind::ShiftCapacity {
                donor,
                receiver,
                step,
            } => {
                format!("shift({donor} -> {receiver}, {:.0}%)", step * 100.0)
            }
        }
    }
}

/// Per-link-group line-speed multipliers over a topology's switch-class
/// structure.
///
/// A *link group* is an unordered switch-class pair `(c1 ≤ c2)`; every
/// edge belongs to the group of its endpoints' classes. The plan holds
/// one multiplier per group — the effective capacity of an edge is its
/// base capacity times its group's multiplier — and group membership is
/// recomputed from the graph on demand, so the plan survives structural
/// moves (which shuffle edge ids) unchanged.
///
/// The total budget `Σ_e base_e · mult(group(e))` is conserved exactly
/// by [`CapacityPlan::shifted`]; a uniform plan (all multipliers 1) is
/// the identity and produces no overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPlan {
    /// Unordered class pairs, sorted ascending — the group order every
    /// index in this module refers to.
    groups: Vec<(usize, usize)>,
    /// Multiplier per group (aligned with `groups`).
    mult: Vec<f64>,
}

impl CapacityPlan {
    /// The uniform plan over the class pairs present in `topo`'s graph
    /// (groups with no edges are not represented).
    pub fn uniform(topo: &Topology) -> Self {
        let mut groups: Vec<(usize, usize)> = Vec::new();
        for e in topo.graph.edges() {
            let pair = class_pair(topo, e.u, e.v);
            if !groups.contains(&pair) {
                groups.push(pair);
            }
        }
        groups.sort_unstable();
        let mult = vec![1.0; groups.len()];
        CapacityPlan { groups, mult }
    }

    /// Number of link groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The class pair of group `g`.
    pub fn group_classes(&self, g: usize) -> (usize, usize) {
        self.groups[g]
    }

    /// Display name of group `g` (`large-small`, `tor-agg`, ...).
    pub fn group_name(&self, g: usize, topo: &Topology) -> String {
        let (a, b) = self.groups[g];
        format!("{}-{}", topo.classes[a].name, topo.classes[b].name)
    }

    /// Multiplier of group `g`.
    pub fn multiplier(&self, g: usize) -> f64 {
        self.mult[g]
    }

    /// All multipliers, in group order.
    pub fn multipliers(&self) -> &[f64] {
        &self.mult
    }

    /// Whether every multiplier is exactly 1 (no overrides needed).
    pub fn is_uniform(&self) -> bool {
        self.mult.iter().all(|&m| m == 1.0)
    }

    /// The group index of an edge between switches `u` and `v`, if its
    /// class pair is represented.
    pub fn group_of(&self, topo: &Topology, u: usize, v: usize) -> Option<usize> {
        let pair = class_pair(topo, u, v);
        self.groups.binary_search(&pair).ok()
    }

    /// Current (effective) edge-capacity sum of group `g` under this
    /// plan: `mult_g · Σ base_e` over the group's edges in `topo`.
    pub fn group_capacity(&self, g: usize, topo: &Topology) -> f64 {
        self.mult[g] * self.group_base_capacity(g, topo)
    }

    /// Base edge-capacity sum of group `g` in `topo`.
    pub fn group_base_capacity(&self, g: usize, topo: &Topology) -> f64 {
        topo.graph
            .edges()
            .iter()
            .filter(|e| class_pair(topo, e.u, e.v) == self.groups[g])
            .map(|e| e.capacity)
            .sum()
    }

    /// Total effective capacity counting both directions (comparable to
    /// [`CsrNet::total_capacity`]). Edges whose class pair the plan does
    /// not represent — e.g. links created by a growth move pairing
    /// classes that had no edges at plan-construction time — ride at
    /// multiplier 1.
    pub fn effective_capacity(&self, topo: &Topology) -> f64 {
        2.0 * topo
            .graph
            .edges()
            .iter()
            .map(|e| {
                let mult = self.group_of(topo, e.u, e.v).map_or(1.0, |g| self.mult[g]);
                e.capacity * mult
            })
            .sum::<f64>()
    }

    /// The per-edge capacity overrides materialising this plan over
    /// `topo`, ready for [`CsrNet::with_capacity_overrides`] (arc ids
    /// under the base numbering `2e`). Groups at multiplier 1 produce
    /// no entries, so the uniform plan is a free clone.
    pub fn overrides(&self, topo: &Topology) -> Vec<(ArcId, f64)> {
        let mut out = Vec::new();
        for (e, edge) in topo.graph.edges().iter().enumerate() {
            let mult = self
                .group_of(topo, edge.u, edge.v)
                .map_or(1.0, |g| self.mult[g]);
            if mult != 1.0 {
                out.push((e << 1, edge.capacity * mult));
            }
        }
        out
    }

    /// The delta view of `base` (which must be `topo.graph`'s net or a
    /// structure-preserving view of it) under this plan. Uniform plans
    /// return a plain clone, keeping the base `id` and every cache warm.
    ///
    /// # Errors
    /// As [`CsrNet::with_capacity_overrides`] (e.g. an override landing
    /// on a disabled arc).
    pub fn view(&self, topo: &Topology, base: &CsrNet) -> Result<CsrNet, GraphError> {
        base.with_capacity_overrides(&self.overrides(topo))
    }

    /// The plan after a budget-preserving [`MoveKind::ShiftCapacity`]:
    /// `step` of the donor group's current capacity moves to the
    /// receiver. Returns `None` when the move is invalid — identical or
    /// out-of-range groups, a step outside `(0, 1)`, an empty donor or
    /// receiver, or a resulting multiplier outside
    /// `[min_mult, max_mult]`.
    pub fn shifted(
        &self,
        topo: &Topology,
        donor: usize,
        receiver: usize,
        step: f64,
        min_mult: f64,
        max_mult: f64,
    ) -> Option<CapacityPlan> {
        if donor == receiver
            || donor >= self.groups.len()
            || receiver >= self.groups.len()
            || !(step > 0.0 && step < 1.0)
        {
            return None;
        }
        let donor_base = self.group_base_capacity(donor, topo);
        let receiver_base = self.group_base_capacity(receiver, topo);
        if donor_base <= 0.0 || receiver_base <= 0.0 {
            return None;
        }
        let delta = step * self.mult[donor] * donor_base;
        let new_donor = self.mult[donor] * (1.0 - step);
        let new_receiver = self.mult[receiver] + delta / receiver_base;
        if new_donor < min_mult || new_receiver > max_mult {
            return None;
        }
        let mut next = self.clone();
        next.mult[donor] = new_donor;
        next.mult[receiver] = new_receiver;
        Some(next)
    }
}

/// A move resolved against the exact graph state it was applied to:
/// edge *ids* (which [`dctopo_graph::Graph::remove_edge`] compacts on
/// every rewire) are replaced by endpoint pairs, and budget-preserving
/// capacity shifts by their multiplicative group factors — so the move
/// survives replay, reordering, and rollback. This is the interchange
/// form the reconfiguration planner (`dctopo-plan`) consumes; produce
/// it with [`crate::SearchResult::export_moves`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedMove {
    /// A degree-preserving rewire: remove the two `remove` endpoint
    /// pairs, add the two `add` pairs with capacities `cap` (the
    /// [`TwoSwap`] capacity-inheritance rule already applied).
    Rewire {
        /// Endpoint pairs of the two removed edges.
        remove: [(usize, usize); 2],
        /// Endpoint pairs of the two added edges.
        add: [(usize, usize); 2],
        /// Capacities of the two added edges, aligned with `add`.
        cap: [f64; 2],
    },
    /// A budget-preserving line-speed shift, resolved to the exact
    /// multiplicative factors it applied to the donor and receiver
    /// group multipliers. Factors compose commutatively, so a set of
    /// resolved shifts reaches the same final plan in any order
    /// (multiply in a fixed canonical order for bitwise determinism).
    Shift {
        /// Donor link-group index (in [`CapacityPlan`] group order).
        donor: usize,
        /// Receiver link-group index.
        receiver: usize,
        /// Factor applied to the donor's multiplier (`1 - step`, < 1).
        donor_factor: f64,
        /// Factor applied to the receiver's multiplier (> 1).
        receiver_factor: f64,
    },
}

impl ResolvedMove {
    /// Short display form for traces and CLI output.
    pub fn describe(&self) -> String {
        match self {
            ResolvedMove::Rewire { remove, add, .. } => format!(
                "rewire -({},{})-({},{}) +({},{})+({},{})",
                remove[0].0,
                remove[0].1,
                remove[1].0,
                remove[1].1,
                add[0].0,
                add[0].1,
                add[1].0,
                add[1].1
            ),
            ResolvedMove::Shift {
                donor,
                receiver,
                donor_factor,
                receiver_factor,
            } => format!("shift {donor} x{donor_factor:.3} -> {receiver} x{receiver_factor:.3}"),
        }
    }
}

/// The unordered class pair of an edge.
fn class_pair(topo: &Topology, u: usize, v: usize) -> (usize, usize) {
    let (a, b) = (topo.class_of[u], topo.class_of[v]);
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo_topology::hetero::{two_cluster, CrossSpec};
    use dctopo_topology::ClusterSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hetero_topo() -> Topology {
        let mut rng = StdRng::seed_from_u64(8);
        two_cluster(
            ClusterSpec {
                count: 6,
                ports: 10,
                servers_per_switch: 3,
            },
            ClusterSpec {
                count: 6,
                ports: 8,
                servers_per_switch: 2,
            },
            CrossSpec::Exact(6),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn uniform_plan_covers_all_edges_and_is_identity() {
        let topo = hetero_topo();
        let plan = CapacityPlan::uniform(&topo);
        assert!(plan.group_count() >= 2 && plan.group_count() <= 3);
        assert!(plan.is_uniform());
        assert!(plan.overrides(&topo).is_empty());
        let base = CsrNet::from_graph(&topo.graph);
        let view = plan.view(&topo, &base).unwrap();
        assert_eq!(view.id(), base.id(), "uniform plan must be a free clone");
        assert!((plan.effective_capacity(&topo) - base.total_capacity()).abs() < 1e-9);
    }

    #[test]
    fn shift_conserves_budget_and_respects_bounds() {
        let topo = hetero_topo();
        let plan = CapacityPlan::uniform(&topo);
        let before = plan.effective_capacity(&topo);
        let shifted = plan.shifted(&topo, 0, 1, 0.25, 0.5, 2.0).unwrap();
        let after = shifted.effective_capacity(&topo);
        assert!(
            (before - after).abs() < 1e-9 * before,
            "budget drifted: {before} -> {after}"
        );
        assert!(shifted.multiplier(0) < 1.0 && shifted.multiplier(1) > 1.0);
        // repeated shifting out of the donor eventually hits min_mult
        let mut p = plan.clone();
        let mut shifts = 0;
        while let Some(next) = p.shifted(&topo, 0, 1, 0.25, 0.5, 4.0) {
            p = next;
            shifts += 1;
            assert!(shifts < 100, "min_mult bound never engaged");
        }
        assert!(p.multiplier(0) >= 0.5);
        // invalid moves
        assert!(plan.shifted(&topo, 0, 0, 0.25, 0.5, 2.0).is_none());
        assert!(plan.shifted(&topo, 0, 99, 0.25, 0.5, 2.0).is_none());
        assert!(plan.shifted(&topo, 0, 1, 0.0, 0.5, 2.0).is_none());
        assert!(plan.shifted(&topo, 0, 1, 1.0, 0.5, 2.0).is_none());
    }

    #[test]
    fn overrides_land_on_the_right_edges() {
        let topo = hetero_topo();
        let plan = CapacityPlan::uniform(&topo);
        let shifted = plan.shifted(&topo, 0, 1, 0.5, 0.25, 3.0).unwrap();
        let base = CsrNet::from_graph(&topo.graph);
        let view = shifted.view(&topo, &base).unwrap();
        assert_eq!(
            view.structure_id(),
            base.structure_id(),
            "capacity plan views must preserve structure"
        );
        for (e, edge) in topo.graph.edges().iter().enumerate() {
            let g = shifted.group_of(&topo, edge.u, edge.v).unwrap();
            let want = edge.capacity * shifted.multiplier(g);
            assert!(
                (view.capacity(e << 1) - want).abs() < 1e-12,
                "edge {e} (group {g}) capacity wrong"
            );
        }
        // budget conservation is visible in the view too
        assert!((view.total_capacity() - base.total_capacity()).abs() < 1e-9);
    }

    #[test]
    fn plan_survives_structural_edge_id_shuffles() {
        // group membership is a function of endpoints, so applying a
        // two-swap (which compacts edge ids) must not corrupt the plan
        let mut topo = hetero_topo();
        let plan = CapacityPlan::uniform(&topo);
        let shifted = plan.shifted(&topo, 0, 1, 0.25, 0.5, 2.0).unwrap();
        let before = shifted.effective_capacity(&topo);
        let m = topo.graph.edge_count();
        let swap = (0..m)
            .flat_map(|e1| (0..m).map(move |e2| (e1, e2)))
            .flat_map(|(e1, e2)| {
                [false, true]
                    .into_iter()
                    .map(move |cross| TwoSwap { e1, e2, cross })
            })
            .find(|s| {
                // keep the swap class-internal so group sums are preserved
                dctopo_topology::moves::two_swap_is_valid(&topo.graph, s) && {
                    let ((x1, y1), (x2, y2)) =
                        dctopo_topology::moves::two_swap_endpoints(&topo.graph, s).unwrap();
                    let e1 = topo.graph.edge(s.e1);
                    let e2 = topo.graph.edge(s.e2);
                    class_pair(&topo, x1, y1) == class_pair(&topo, e1.u, e1.v)
                        && class_pair(&topo, x2, y2) == class_pair(&topo, e2.u, e2.v)
                }
            })
            .expect("some class-internal swap exists");
        dctopo_topology::moves::apply_two_swap(&mut topo.graph, &swap).unwrap();
        let after = shifted.effective_capacity(&topo);
        assert!((before - after).abs() < 1e-9 * before);
    }

    #[test]
    fn move_kind_descriptions() {
        assert!(MoveKind::TwoSwap(TwoSwap {
            e1: 3,
            e2: 7,
            cross: true
        })
        .is_structural());
        assert!(MoveKind::Expand {
            network_degree: 4,
            class: 0
        }
        .is_structural());
        let shift = MoveKind::ShiftCapacity {
            donor: 0,
            receiver: 1,
            step: 0.25,
        };
        assert!(!shift.is_structural());
        assert!(shift.describe().contains("25%"));
    }
}
