//! The multi-fidelity surrogate ladder: cheap, *sound* upper bounds a
//! candidate topology must clear before the search pays for a certified
//! solve.
//!
//! Level 0 is the Theorem-1-style hop bound `C / Σ_j d_j·hop_j` over the
//! candidate's BFS distances — a hard per-instance bound on any
//! concurrent flow, because every unit of commodity `j` consumes at
//! least `hop_j` units of capacity. Level 1 is the demand-weighted cut
//! bound `C̄ / crossing demand` ([`dctopo_bounds::demand_cut_bound`])
//! minimised over a fixed set of probe partitions ([`CutProbe`]): the
//! switch-class partition (where the heterogeneous experiments put
//! their bottleneck) plus seeded bisections. Level 0 batches its BFS
//! sweeps 64 sources at a time through a reusable
//! [`MsBfsWorkspace`] (`O(⌈sources/64⌉·(n + m))` per candidate instead
//! of one sweep per source); level 1 costs `O(probes·m)` — noise
//! against a certified solve either way.

use dctopo_bounds::{cross_capacity_with, demand_cut_bound};
use dctopo_flow::Commodity;
use dctopo_graph::msbfs::{ms_bfs, MsBfsWorkspace, MAX_LANES};
use dctopo_graph::paths::{path_stats_with, BfsWorkspace, UNREACHABLE};
use dctopo_graph::{Graph, GraphError};
use dctopo_topology::Topology;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::derive_seed;

/// Domain tag for probe-bisection seeds (see [`crate::derive_seed`]).
const DOMAIN_PROBE: u64 = 11;

/// `Σ_j demand_j · hopdist(src_j, dst_j)` over the switch graph — the
/// denominator of the level-0 hop bound. `∞` when any commodity's
/// endpoints are disconnected (the candidate cannot route at all).
///
/// Commodities must be sorted by source (the order
/// `dctopo_core::solve::aggregate_commodities` emits) so each distinct
/// source occupies one contiguous run and one bit-lane. Distinct
/// sources are batched [`MAX_LANES`] at a time through [`ms_bfs`],
/// whose per-lane distances are bitwise identical to the scalar BFS
/// this ran before, so the surrogate's values (and every pruning
/// decision built on them) are unchanged.
pub fn hop_alpha(g: &Graph, commodities: &[Commodity], ws: &mut MsBfsWorkspace) -> f64 {
    let mut alpha = 0.0f64;
    let mut i = 0;
    while i < commodities.len() {
        // gather the next batch of up to MAX_LANES distinct sources
        let mut sources = [0usize; MAX_LANES];
        let mut lanes = 0usize;
        let mut j = i;
        while j < commodities.len() {
            let s = commodities[j].src;
            if lanes == 0 || sources[lanes - 1] != s {
                if lanes == MAX_LANES {
                    break;
                }
                sources[lanes] = s;
                lanes += 1;
            }
            j += 1;
        }
        ms_bfs(g, &sources[..lanes], ws);
        let mut lane = 0usize;
        for c in &commodities[i..j] {
            if c.src != sources[lane] {
                lane += 1;
            }
            let d = ws.lane_distances(lane)[c.dst];
            if d == UNREACHABLE {
                return f64::INFINITY;
            }
            alpha += c.demand * f64::from(d);
        }
        i = j;
    }
    alpha
}

/// The level-0 hop bound: `C / α` with `C` the total capacity (both
/// directions) and `α` from [`hop_alpha`]. `0` when the candidate is
/// disconnected for some commodity (`α = ∞`), `∞` when there is no
/// demand.
pub fn hop_bound(total_capacity: f64, alpha: f64) -> f64 {
    if alpha == 0.0 {
        f64::INFINITY
    } else if alpha.is_infinite() {
        0.0
    } else {
        total_capacity / alpha
    }
}

/// All-pairs BFS average shortest path length with workspace reuse —
/// the observable the level-0 surrogate is built from, exposed so tests
/// can pin it against [`dctopo_bounds::aspl_lower_bound`].
///
/// # Errors
/// [`GraphError::Disconnected`] when any ordered pair is unreachable.
pub fn observed_aspl(g: &Graph, ws: &mut BfsWorkspace) -> Result<f64, GraphError> {
    Ok(path_stats_with(g, ws)?.aspl)
}

/// One fixed cut probe: a bipartition of the base topology's switches
/// plus the demand crossing it (precomputed once — the commodity set is
/// constant across a search).
#[derive(Debug, Clone)]
pub struct CutProbe {
    /// Display name (`class:large`, `bisection:0`, ...).
    pub name: String,
    /// `membership[v]` — switch `v` is on the "true" side. Switches
    /// added later (growth moves) default to the "false" side.
    pub membership: Vec<bool>,
    /// `Σ demand` of commodities whose endpoints straddle the cut.
    pub cross_demand: f64,
}

impl CutProbe {
    /// Build a probe over an explicit membership vector.
    pub fn new(name: impl Into<String>, membership: Vec<bool>, commodities: &[Commodity]) -> Self {
        let side = |v: usize| membership.get(v).copied().unwrap_or(false);
        let cross_demand = commodities
            .iter()
            .filter(|c| side(c.src) != side(c.dst))
            .map(|c| c.demand)
            .sum();
        CutProbe {
            name: name.into(),
            membership,
            cross_demand,
        }
    }

    /// Which side switch `v` is on (switches beyond the base topology —
    /// growth moves — land on the "false" side).
    #[inline]
    pub fn side(&self, v: usize) -> bool {
        self.membership.get(v).copied().unwrap_or(false)
    }
}

/// The fixed probe set of a search: the switch-class partition (class
/// `0` vs the rest) when the topology is heterogeneous and both sides
/// are non-empty, plus `bisections` seeded random halvings. Probes are
/// a function of `(topo, commodities, seed)` only, so every candidate
/// of a search is measured against the same cuts.
pub fn cut_probes(
    topo: &Topology,
    commodities: &[Commodity],
    bisections: usize,
    seed: u64,
) -> Vec<CutProbe> {
    let n = topo.switch_count();
    let mut probes = Vec::new();
    if topo.classes.len() >= 2 {
        let membership = topo.class_membership(0);
        let ones = membership.iter().filter(|&&m| m).count();
        if ones > 0 && ones < n {
            probes.push(CutProbe::new(
                format!("class:{}", topo.classes[0].name),
                membership,
                commodities,
            ));
        }
    }
    for p in 0..bisections {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, DOMAIN_PROBE, p, 0));
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates over the switch ids
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut membership = vec![false; n];
        for &v in order.iter().take(n / 2) {
            membership[v] = true;
        }
        probes.push(CutProbe::new(
            format!("bisection:{p}"),
            membership,
            commodities,
        ));
    }
    probes
}

/// The level-1 surrogate: the tightest [`demand_cut_bound`] over the
/// probe set, with per-edge effective capacities supplied by
/// `edge_capacity` (base capacity × the candidate's plan multiplier).
/// `∞` when no probe carries crossing demand.
pub fn min_cut_bound<F: Fn(usize) -> f64>(g: &Graph, probes: &[CutProbe], edge_capacity: F) -> f64 {
    let mut best = f64::INFINITY;
    for probe in probes {
        if probe.cross_demand == 0.0 {
            continue;
        }
        // C̄ counts both directions, matching CsrNet::total_capacity
        let cross = cross_capacity_with(g, &probe.membership, &edge_capacity);
        best = best.min(demand_cut_bound(cross, probe.cross_demand));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo_bounds::aspl_lower_bound;
    use dctopo_topology::classic::complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        g
    }

    /// The satellite pin: the level-0 surrogate's BFS ASPL agrees with
    /// the analytic `d*` exactly where the tree view is achievable
    /// (complete graph, ring) and respects it as a lower bound on RRGs,
    /// so pruning decisions built on it inherit Theorem 1's soundness.
    #[test]
    fn observed_aspl_pins_against_moore_bound() {
        let mut ws = BfsWorkspace::default();
        // complete graph K_n: ASPL exactly 1 = d*(n, n-1)
        for n in [4usize, 6, 9] {
            let topo = complete(n, 1).unwrap();
            let aspl = observed_aspl(&topo.graph, &mut ws).unwrap();
            assert!((aspl - 1.0).abs() < 1e-12);
            assert!((aspl - aspl_lower_bound(n, n - 1).unwrap()).abs() < 1e-12);
        }
        // ring C_9: ASPL 2.5 = d*(9, 2) (the tree view is exact for a cycle)
        let aspl = observed_aspl(&ring(9), &mut ws).unwrap();
        assert!((aspl - 2.5).abs() < 1e-12);
        assert!((aspl - aspl_lower_bound(9, 2).unwrap()).abs() < 1e-12);
        // small RRGs: observed ASPL >= the Moore-style lower bound
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = Topology::random_regular(20, 8, 4, &mut rng).unwrap();
            let aspl = observed_aspl(&topo.graph, &mut ws).unwrap();
            let bound = aspl_lower_bound(20, 4).unwrap();
            assert!(
                aspl >= bound - 1e-12,
                "seed {seed}: ASPL {aspl} below bound {bound}"
            );
        }
    }

    #[test]
    fn hop_alpha_weights_demands_by_distance() {
        let g = ring(6);
        let mut ws = MsBfsWorkspace::default();
        let cs = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 2.0,
            },
            Commodity {
                src: 1,
                dst: 2,
                demand: 1.0,
            },
        ];
        // 0->3 is 3 hops, 1->2 is 1 hop: alpha = 2*3 + 1*1 = 7
        let alpha = hop_alpha(&g, &cs, &mut ws);
        assert!((alpha - 7.0).abs() < 1e-12);
        // C = 2 * 6 edges = 12 both directions; bound = 12/7
        assert!((hop_bound(12.0, alpha) - 12.0 / 7.0).abs() < 1e-12);
        // disconnected commodity: alpha infinite, bound zero
        let mut g2 = Graph::new(4);
        g2.add_unit_edge(0, 1).unwrap();
        g2.add_unit_edge(2, 3).unwrap();
        let alpha2 = hop_alpha(&g2, &[Commodity::unit(0, 2)], &mut ws);
        assert!(alpha2.is_infinite());
        assert_eq!(hop_bound(8.0, alpha2), 0.0);
        // no demand: bound unbounded
        assert_eq!(hop_bound(8.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn probes_are_deterministic_and_cover_classes() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = dctopo_topology::hetero::two_cluster(
            dctopo_topology::ClusterSpec {
                count: 4,
                ports: 8,
                servers_per_switch: 2,
            },
            dctopo_topology::ClusterSpec {
                count: 4,
                ports: 6,
                servers_per_switch: 1,
            },
            dctopo_topology::hetero::CrossSpec::Exact(4),
            &mut rng,
        )
        .unwrap();
        let cs = [Commodity::unit(0, 5), Commodity::unit(1, 2)];
        let a = cut_probes(&topo, &cs, 2, 42);
        let b = cut_probes(&topo, &cs, 2, 42);
        assert_eq!(a.len(), 3, "class probe + 2 bisections");
        assert_eq!(a[0].name, "class:large");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.membership, y.membership, "probes must be seeded");
            assert_eq!(x.cross_demand, y.cross_demand);
        }
        // class probe: 0->5 crosses (class 0 vs 1), 1->2 does not
        assert!((a[0].cross_demand - 1.0).abs() < 1e-12);
        // each bisection splits the switches in half
        for p in &a[1..] {
            assert_eq!(p.membership.iter().filter(|&&m| m).count(), 4);
        }
    }

    #[test]
    fn min_cut_bound_finds_the_scarce_cut() {
        // two K4-ish blobs joined by one unit edge: the bisection that
        // separates them yields the binding bound
        let mut g = Graph::new(8);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_unit_edge(u, v).unwrap();
                g.add_unit_edge(u + 4, v + 4).unwrap();
            }
        }
        g.add_unit_edge(0, 4).unwrap();
        let cs = [Commodity::unit(1, 5), Commodity::unit(2, 6)];
        let probe = CutProbe::new(
            "split",
            vec![true, true, true, true, false, false, false, false],
            &cs,
        );
        assert!((probe.cross_demand - 2.0).abs() < 1e-12);
        let bound = min_cut_bound(&g, std::slice::from_ref(&probe), |e| g.edge(e).capacity);
        // C̄ = 2 * 1 (one crossing edge, both directions), demand 2 -> bound 1
        assert!((bound - 1.0).abs() < 1e-12);
        // re-rating the crossing edge 4x lifts the bound 4x
        let bound4 = min_cut_bound(&g, std::slice::from_ref(&probe), |e| {
            let edge = g.edge(e);
            if (edge.u, edge.v) == (0, 4) {
                4.0
            } else {
                edge.capacity
            }
        });
        assert!((bound4 - 4.0).abs() < 1e-12);
        // a probe nothing crosses is skipped (unbounded)
        let idle = CutProbe::new("idle", vec![true; 8], &cs);
        assert_eq!(
            min_cut_bound(&g, std::slice::from_ref(&idle), |e| g.edge(e).capacity),
            f64::INFINITY
        );
    }
}
