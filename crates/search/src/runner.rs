//! The search driver: seeded move batches, parallel multi-fidelity
//! evaluation, and a greedy / simulated-annealing acceptance schedule.
//!
//! One round generates [`SearchSpec::batch`] moves (each from a seed
//! derived from `(round, move index)`), evaluates them concurrently on
//! the persistent worker pool, and accepts at most one. A candidate is
//! *eligible* only if it passes every ladder gate **and** strictly
//! improves the certified λ; among eligible candidates the highest λ
//! wins, ties broken by the lowest move index — a rule that depends
//! only on the candidate vector, never on scheduling, which is what
//! makes search trajectories bit-identical at every thread count.
//!
//! With [`SearchSpec::temperature`] `> 0`, a round with no improving
//! candidate may instead accept the best gate-passing candidate with
//! Metropolis probability `exp((λ_c - λ_inc) / (T_r · λ_inc))`, with
//! `T_r` cooled geometrically per round and the coin drawn from a
//! seed derived from the round index (deterministic annealing).

use dctopo_core::solve::{aggregate_commodities, nic_limit};
use dctopo_flow::{Commodity, FlowError, FlowOptions, PathSetCache, SolvedFlow};
use dctopo_graph::{CsrNet, MsBfsWorkspace};
use dctopo_topology::expand::expand_random;
use dctopo_topology::moves::{apply_two_swap, two_swap_is_valid, TwoSwap};
use dctopo_topology::Topology;
use dctopo_traffic::TrafficMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

use crate::derive_seed;
use crate::ladder::{cut_probes, hop_alpha, hop_bound, min_cut_bound, CutProbe};
use crate::moves::{CapacityPlan, MoveKind};

/// Domain tag for per-move generation seeds.
const DOMAIN_MOVE: u64 = 21;
/// Domain tag for per-move application randomness (expansion wiring).
const DOMAIN_APPLY: u64 = 22;
/// Domain tag for the per-round annealing coin.
const DOMAIN_ACCEPT: u64 = 23;

/// Constraints of the capacity (line-speed budget) move family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityBudget {
    /// No link group may drop below this multiple of its base capacity.
    pub min_mult: f64,
    /// No link group may exceed this multiple of its base capacity.
    pub max_mult: f64,
    /// Largest fraction of a donor group's current capacity one move
    /// may shift (moves sample steps in `{¼, ½, ¾, 1} ×` this).
    pub step: f64,
}

impl Default for CapacityBudget {
    /// The paper-flavoured "2:1 line-card" budget: any group may be
    /// re-rated between half and double its base line speed.
    fn default() -> Self {
        CapacityBudget {
            min_mult: 0.5,
            max_mult: 2.0,
            step: 0.25,
        }
    }
}

/// Parameters of the growth (switch-insertion) move family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowSpec {
    /// Network ports of each inserted switch (must be even, positive).
    pub network_degree: usize,
    /// Switch class inserted switches join.
    pub class: usize,
}

/// How candidates are certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Multi-fidelity: only candidates that clear the hop and cut gates
    /// pay for a certified solve (the default).
    Ladder,
    /// Certify every valid candidate. The ladder gates still apply to
    /// *acceptance*, so the accepted-move sequence is identical to
    /// [`Fidelity::Ladder`] — this mode exists to measure what the
    /// ladder saves (`BENCH_search.json`).
    CertifyAll,
}

/// The full search specification.
#[derive(Debug, Clone)]
pub struct SearchSpec {
    /// Master seed; every move, probe, and annealing coin derives from
    /// it and its grid coordinates.
    pub seed: u64,
    /// Number of rounds (batches).
    pub rounds: usize,
    /// Moves generated and evaluated per round.
    pub batch: usize,
    /// Enable the structural (two-swap) move family.
    pub structural: bool,
    /// Enable the capacity move family with these constraints.
    pub capacity: Option<CapacityBudget>,
    /// Enable the growth (switch-insertion) move family.
    pub grow: Option<GrowSpec>,
    /// Solver options for certified evaluations (backend included).
    pub opts: FlowOptions,
    /// Ladder vs certify-every-move (see [`Fidelity`]).
    pub fidelity: Fidelity,
    /// Seeded bisection probes for the cut surrogate (the class
    /// partition is always probed on heterogeneous topologies).
    pub cut_probes: usize,
    /// Initial annealing temperature (relative λ units); `0` = greedy.
    pub temperature: f64,
    /// Geometric cooling factor per round.
    pub cooling: f64,
}

impl SearchSpec {
    /// A greedy structural search (two-swaps only).
    pub fn structural(seed: u64, rounds: usize, batch: usize) -> Self {
        SearchSpec {
            seed,
            rounds,
            batch,
            structural: true,
            capacity: None,
            grow: None,
            opts: FlowOptions::fast(),
            fidelity: Fidelity::Ladder,
            cut_probes: 2,
            temperature: 0.0,
            cooling: 0.9,
        }
    }

    /// A greedy capacity search (budget shifts only).
    pub fn capacity(seed: u64, rounds: usize, batch: usize, budget: CapacityBudget) -> Self {
        SearchSpec {
            structural: false,
            capacity: Some(budget),
            ..SearchSpec::structural(seed, rounds, batch)
        }
    }

    /// Same spec with different solver options.
    pub fn with_opts(mut self, opts: FlowOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Same spec with a different certification mode.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Same spec with simulated-annealing acceptance.
    pub fn with_temperature(mut self, temperature: f64, cooling: f64) -> Self {
        self.temperature = temperature;
        self.cooling = cooling;
        self
    }
}

/// A certified evaluation of one topology/plan configuration, together
/// with the surrogate bounds it was measured against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Certificate {
    /// Certified feasible network λ (the search objective).
    pub lambda: f64,
    /// Certified dual upper bound on the optimal λ.
    pub upper: f64,
    /// Level-0 hop bound `C / Σ d_j·hop_j` of this configuration.
    pub hop_bound: f64,
    /// Level-1 cut bound (min over probes); `∞` if no probe binds.
    pub cut_bound: f64,
    /// `Σ d_j·hop_j` (cached so capacity moves can reuse it).
    pub hop_alpha: f64,
    /// Dijkstra-equivalent settles the certified solve spent.
    pub settles: u64,
    /// The hop gate was evaluated and passed before certification.
    pub passed_hop: bool,
    /// The cut gate was evaluated and passed before certification.
    pub passed_cut: bool,
}

/// Why (or how) a candidate left the ladder.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The move could not be applied (illegal swap, over-budget shift,
    /// stuck expansion, disconnecting rewire, solver rejection).
    Invalid(String),
    /// Pruned at level 0: the hop bound did not clear the gate.
    PrunedHop {
        /// The candidate's hop bound.
        hop_bound: f64,
    },
    /// Pruned at level 1: the cut bound shows the candidate cannot be
    /// accepted this round.
    PrunedCut {
        /// The candidate's hop bound (level 0 was passed).
        hop_bound: f64,
        /// The candidate's cut bound.
        cut_bound: f64,
    },
    /// The candidate survived to a certified solve.
    Certified(Certificate),
}

/// One evaluated move.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Move index within its round.
    pub index: usize,
    /// The move.
    pub kind: MoveKind,
    /// What happened to it.
    pub outcome: Outcome,
}

impl Candidate {
    /// The certificate, if the candidate was certified.
    pub fn certificate(&self) -> Option<&Certificate> {
        match &self.outcome {
            Outcome::Certified(c) => Some(c),
            _ => None,
        }
    }
}

/// One round of the search trace.
#[derive(Debug, Clone)]
pub struct RoundTrace {
    /// Round index.
    pub round: usize,
    /// Annealing temperature this round ran at.
    pub temperature: f64,
    /// Every candidate, in move-index order.
    pub candidates: Vec<Candidate>,
    /// Index (into `candidates`) of the accepted move, if any.
    pub accepted: Option<usize>,
}

/// An accepted move, with the incumbent it replaced.
#[derive(Debug, Clone)]
pub struct AcceptedMove {
    /// Round the move was accepted in.
    pub round: usize,
    /// Move index within the round.
    pub index: usize,
    /// The move.
    pub kind: MoveKind,
    /// Certified λ before the move.
    pub lambda_before: f64,
    /// The accepting evaluation.
    pub certificate: Certificate,
}

/// The outcome of a whole search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Certified evaluation of the starting configuration.
    pub initial: Certificate,
    /// Certified evaluation of the final configuration.
    pub best: Certificate,
    /// NIC cap of the traffic (constant across the search).
    pub nic_limit: f64,
    /// Per-round traces, in order.
    pub rounds: Vec<RoundTrace>,
    /// Accepted moves, in order.
    pub accepted: Vec<AcceptedMove>,
    /// Certified solves performed (including the initial one).
    pub certified_solves: usize,
    /// Total Dijkstra-equivalent settles across all certified solves.
    pub total_settles: u64,
    /// The final topology.
    pub topology: Topology,
    /// The final capacity plan (uniform if no capacity move was
    /// accepted).
    pub plan: CapacityPlan,
}

impl SearchResult {
    /// Relative improvement of the certified λ over the initial
    /// configuration.
    pub fn improvement(&self) -> f64 {
        if self.initial.lambda > 0.0 {
            self.best.lambda / self.initial.lambda - 1.0
        } else {
            0.0
        }
    }

    /// The paper's throughput of the final configuration: λ capped by
    /// the NIC line rate.
    pub fn throughput(&self) -> f64 {
        self.best.lambda.min(self.nic_limit)
    }

    /// Candidates pruned by the hop gate, across all rounds.
    pub fn pruned_hop(&self) -> usize {
        self.count(|c| matches!(c.outcome, Outcome::PrunedHop { .. }))
    }

    /// Candidates pruned by the cut gate, across all rounds.
    pub fn pruned_cut(&self) -> usize {
        self.count(|c| matches!(c.outcome, Outcome::PrunedCut { .. }))
    }

    /// Invalid candidates across all rounds.
    pub fn invalid(&self) -> usize {
        self.count(|c| matches!(c.outcome, Outcome::Invalid(_)))
    }

    /// Total candidates evaluated.
    pub fn evaluated(&self) -> usize {
        self.rounds.iter().map(|r| r.candidates.len()).sum()
    }

    fn count(&self, pred: impl Fn(&Candidate) -> bool) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| &r.candidates)
            .filter(|c| pred(c))
            .count()
    }

    /// Export the accepted move sequence as id-stable
    /// [`ResolvedMove`](crate::moves::ResolvedMove)s by replaying it
    /// from `from`, the topology this search started at.
    ///
    /// Each [`MoveKind::TwoSwap`] names edge *ids* valid only against
    /// the graph state it was accepted on (rewires compact edge ids),
    /// so the replay resolves every swap to its endpoint pairs and
    /// every [`MoveKind::ShiftCapacity`] to the exact multiplicative
    /// group factors it applied. The result is the migration the
    /// reconfiguration planner (`dctopo-plan`) reorders: applying the
    /// resolved moves in any valid order reaches this search's final
    /// topology and capacity plan.
    ///
    /// # Errors
    /// [`dctopo_graph::GraphError::Unrealizable`] when the sequence
    /// contains a [`MoveKind::Expand`] (a new switch has no meaning on
    /// the fixed node set a migration is planned over), when a replayed
    /// move no longer applies to `from` (wrong starting topology), or
    /// when a shift's factors cannot be reconstructed.
    pub fn export_moves(
        &self,
        from: &Topology,
    ) -> Result<Vec<crate::moves::ResolvedMove>, dctopo_graph::GraphError> {
        use crate::moves::ResolvedMove;
        use dctopo_graph::GraphError;
        use dctopo_topology::moves::two_swap_endpoints;

        let mut topo = from.clone();
        let mut plan = CapacityPlan::uniform(&topo);
        let mut out = Vec::with_capacity(self.accepted.len());
        for mv in &self.accepted {
            match mv.kind {
                MoveKind::TwoSwap(swap) => {
                    let ((x1, y1), (x2, y2)) =
                        two_swap_endpoints(&topo.graph, &swap).ok_or_else(|| {
                            GraphError::Unrealizable(format!(
                                "accepted swap ({}, {}) does not replay on the given \
                                 starting topology",
                                swap.e1, swap.e2
                            ))
                        })?;
                    let (a, b) = {
                        let e = topo.graph.edge(swap.e1);
                        (e.u, e.v)
                    };
                    let (c, d) = {
                        let e = topo.graph.edge(swap.e2);
                        (e.u, e.v)
                    };
                    let cap1 = topo.graph.edge(swap.e1).capacity;
                    let cap2 = topo.graph.edge(swap.e2).capacity;
                    apply_two_swap(&mut topo.graph, &swap)?;
                    out.push(ResolvedMove::Rewire {
                        remove: [(a, b), (c, d)],
                        add: [(x1, y1), (x2, y2)],
                        cap: [cap1, cap2],
                    });
                }
                MoveKind::ShiftCapacity {
                    donor,
                    receiver,
                    step,
                } => {
                    let before_donor = plan.multiplier(donor);
                    let before_receiver = plan.multiplier(receiver);
                    // accepted shifts were already validated against the
                    // spec's budget bounds; replay with loose bounds
                    plan = plan
                        .shifted(&topo, donor, receiver, step, 0.0, f64::INFINITY)
                        .ok_or_else(|| {
                            GraphError::Unrealizable(format!(
                                "accepted shift {donor} -> {receiver} does not replay"
                            ))
                        })?;
                    out.push(ResolvedMove::Shift {
                        donor,
                        receiver,
                        donor_factor: plan.multiplier(donor) / before_donor,
                        receiver_factor: plan.multiplier(receiver) / before_receiver,
                    });
                }
                MoveKind::Expand { .. } => {
                    return Err(GraphError::Unrealizable(
                        "expand moves cannot be exported as a migration: the planner \
                         reorders moves over a fixed switch set"
                            .into(),
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Mutable search state: the incumbent configuration plus everything
/// derived from it.
struct State {
    topo: Topology,
    /// CSR net of `topo.graph` at *base* capacities. Candidate
    /// evaluations derive their plan views from it on demand.
    base_net: CsrNet,
    plan: CapacityPlan,
    incumbent: Certificate,
}

/// Runs a [`SearchSpec`] against one topology and traffic matrix.
pub struct SearchRunner {
    spec: SearchSpec,
    topo: Topology,
    commodities: Vec<Commodity>,
    nic: f64,
    probes: Vec<CutProbe>,
    cache: PathSetCache,
}

impl std::fmt::Debug for SearchRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchRunner")
            .field("spec", &self.spec)
            .field("switches", &self.topo.switch_count())
            .field("commodities", &self.commodities.len())
            .finish_non_exhaustive()
    }
}

impl SearchRunner {
    /// Set up a search over `topo` under the (fixed) traffic matrix
    /// `tm`. The commodity set, NIC cap, and cut probes are computed
    /// once here and held constant across the whole search.
    ///
    /// # Errors
    /// [`FlowError::NoCommodities`] when all traffic is switch-local
    /// (there is no network objective to search on);
    /// [`FlowError::BadOptions`] when no move family is enabled or an
    /// enabled family cannot operate on this topology (capacity search
    /// needs ≥ 2 link groups, structural search ≥ 2 links, growth an
    /// even positive degree).
    pub fn new(topo: &Topology, tm: &TrafficMatrix, spec: SearchSpec) -> Result<Self, FlowError> {
        let commodities = aggregate_commodities(topo, tm);
        if commodities.is_empty() {
            return Err(FlowError::NoCommodities);
        }
        let plan = CapacityPlan::uniform(topo);
        if !spec.structural && spec.capacity.is_none() && spec.grow.is_none() {
            return Err(FlowError::BadOptions(
                "search needs at least one move family enabled".into(),
            ));
        }
        if spec.structural && topo.graph.edge_count() < 2 {
            return Err(FlowError::BadOptions(
                "structural search needs at least 2 links".into(),
            ));
        }
        if spec.capacity.is_some() && plan.group_count() < 2 {
            return Err(FlowError::BadOptions(format!(
                "capacity search needs >= 2 link groups, topology has {}",
                plan.group_count()
            )));
        }
        if let Some(grow) = &spec.grow {
            if grow.network_degree == 0 || grow.network_degree % 2 != 0 {
                return Err(FlowError::BadOptions(format!(
                    "growth degree must be even and positive, got {}",
                    grow.network_degree
                )));
            }
            if grow.class >= topo.classes.len() {
                return Err(FlowError::BadOptions(format!(
                    "growth class {} does not exist",
                    grow.class
                )));
            }
        }
        let probes = cut_probes(topo, &commodities, spec.cut_probes, spec.seed);
        Ok(SearchRunner {
            spec,
            topo: topo.clone(),
            commodities,
            nic: nic_limit(tm),
            probes,
            cache: PathSetCache::new(),
        })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &SearchSpec {
        &self.spec
    }

    /// Execute the search.
    ///
    /// # Errors
    /// Propagates [`FlowError`] from the *initial* certified solve
    /// (e.g. a disconnected starting topology). Per-candidate solver
    /// failures are recorded as [`Outcome::Invalid`] instead.
    pub fn run(&self) -> Result<SearchResult, FlowError> {
        let plan = CapacityPlan::uniform(&self.topo);
        let base_net = CsrNet::from_graph(&self.topo.graph);
        let view = plan.view(&self.topo, &base_net).map_err(FlowError::Graph)?;

        // certify the starting configuration
        let mut ws = MsBfsWorkspace::new(self.topo.switch_count());
        let alpha0 = hop_alpha(&self.topo.graph, &self.commodities, &mut ws);
        let solved0 = self.certify(&view, false)?;
        let initial = Certificate {
            lambda: solved0.throughput,
            upper: solved0.upper_bound,
            hop_bound: hop_bound(view.total_capacity(), alpha0),
            cut_bound: self.cut_bound_of(&self.topo, &plan),
            hop_alpha: alpha0,
            settles: solved0.settles,
            passed_hop: true,
            passed_cut: true,
        };

        let mut state = State {
            topo: self.topo.clone(),
            base_net,
            plan,
            incumbent: initial,
        };
        let mut rounds = Vec::with_capacity(self.spec.rounds);
        let mut accepted = Vec::new();
        let mut certified_solves = 1usize;
        let mut total_settles = initial.settles;

        for round in 0..self.spec.rounds {
            let temperature = self.spec.temperature * self.spec.cooling.powi(round as i32);
            let moves: Vec<MoveKind> = (0..self.spec.batch)
                .map(|i| self.generate_move(&state, round, i))
                .collect();
            let candidates: Vec<Candidate> = (0..moves.len())
                .into_par_iter()
                .map(|i| {
                    let seed = derive_seed(self.spec.seed, DOMAIN_APPLY, round, i);
                    self.evaluate(&state, moves[i], i, seed, temperature)
                })
                .collect();
            for c in &candidates {
                if let Outcome::Certified(cert) = &c.outcome {
                    certified_solves += 1;
                    total_settles += cert.settles;
                }
            }
            let chosen = self.choose(&candidates, &state, round, temperature);
            if let Some(idx) = chosen {
                let cand = &candidates[idx];
                let cert = *cand
                    .certificate()
                    .expect("accepted candidates are certified");
                let lambda_before = state.incumbent.lambda;
                let seed = derive_seed(self.spec.seed, DOMAIN_APPLY, round, idx);
                self.apply(&mut state, cand.kind, seed, cert)
                    .map_err(FlowError::Graph)?;
                accepted.push(AcceptedMove {
                    round,
                    index: idx,
                    kind: cand.kind,
                    lambda_before,
                    certificate: cert,
                });
            }
            rounds.push(RoundTrace {
                round,
                temperature,
                candidates,
                accepted: chosen,
            });
        }

        Ok(SearchResult {
            initial,
            best: state.incumbent,
            nic_limit: self.nic,
            rounds,
            accepted,
            certified_solves,
            total_settles,
            topology: state.topo,
            plan: state.plan,
        })
    }

    /// Deterministically sample move `(round, i)` against the current
    /// state.
    fn generate_move(&self, state: &State, round: usize, i: usize) -> MoveKind {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.spec.seed, DOMAIN_MOVE, round, i));
        let mut families: Vec<u8> = Vec::with_capacity(3);
        if self.spec.structural {
            families.push(0);
        }
        if self.spec.capacity.is_some() {
            families.push(1);
        }
        if self.spec.grow.is_some() {
            families.push(2);
        }
        match families[rng.random_range(0..families.len())] {
            0 => {
                let m = state.topo.graph.edge_count();
                MoveKind::TwoSwap(TwoSwap {
                    e1: rng.random_range(0..m),
                    e2: rng.random_range(0..m),
                    cross: rng.random_range(0..2) == 1,
                })
            }
            1 => {
                let budget = self.spec.capacity.expect("family enabled");
                let groups = state.plan.group_count();
                MoveKind::ShiftCapacity {
                    donor: rng.random_range(0..groups),
                    receiver: rng.random_range(0..groups),
                    step: budget.step * rng.random_range(1..=4usize) as f64 / 4.0,
                }
            }
            _ => {
                let grow = self.spec.grow.expect("family enabled");
                MoveKind::Expand {
                    network_degree: grow.network_degree,
                    class: grow.class,
                }
            }
        }
    }

    /// The sound pruning floor at this temperature: any candidate whose
    /// (hard) cut upper bound sits at or below it can neither improve
    /// the incumbent nor be annealing-accepted.
    fn prune_floor(&self, incumbent_lambda: f64, temperature: f64) -> f64 {
        (incumbent_lambda * (1.0 - 3.0 * temperature)).max(0.0)
    }

    /// Climb the ladder for one candidate.
    fn evaluate(
        &self,
        state: &State,
        kind: MoveKind,
        index: usize,
        apply_seed: u64,
        temperature: f64,
    ) -> Candidate {
        let out = self.evaluate_outcome(state, kind, apply_seed, temperature);
        Candidate {
            index,
            kind,
            outcome: out,
        }
    }

    fn evaluate_outcome(
        &self,
        state: &State,
        kind: MoveKind,
        apply_seed: u64,
        temperature: f64,
    ) -> Outcome {
        let floor = self.prune_floor(state.incumbent.lambda, temperature);
        let ladder = self.spec.fidelity == Fidelity::Ladder;
        match kind {
            MoveKind::ShiftCapacity {
                donor,
                receiver,
                step,
            } => {
                let budget = self.spec.capacity.expect("capacity family enabled");
                let Some(plan) = state.plan.shifted(
                    &state.topo,
                    donor,
                    receiver,
                    step,
                    budget.min_mult,
                    budget.max_mult,
                ) else {
                    return Outcome::Invalid("shift outside the line-card budget".into());
                };
                // level 0: the budget is conserved and hop distances are
                // untouched, so the hop bound is the incumbent's — the
                // gate passes by construction
                let hop = hop_bound(
                    plan.effective_capacity(&state.topo),
                    state.incumbent.hop_alpha,
                );
                // level 1: capacity moved across cuts
                let cut = self.cut_bound_of(&state.topo, &plan);
                if ladder && cut <= floor {
                    return Outcome::PrunedCut {
                        hop_bound: hop,
                        cut_bound: cut,
                    };
                }
                let view = match plan.view(&state.topo, &state.base_net) {
                    Ok(v) => v,
                    Err(e) => return Outcome::Invalid(e.to_string()),
                };
                match self.certify(&view, false) {
                    Ok(s) => Outcome::Certified(Certificate {
                        lambda: s.throughput,
                        upper: s.upper_bound,
                        hop_bound: hop,
                        cut_bound: cut,
                        hop_alpha: state.incumbent.hop_alpha,
                        settles: s.settles,
                        passed_hop: true,
                        passed_cut: cut > floor,
                    }),
                    Err(e) => Outcome::Invalid(e.to_string()),
                }
            }
            MoveKind::TwoSwap(swap) => {
                if !two_swap_is_valid(&state.topo.graph, &swap) {
                    return Outcome::Invalid("illegal two-swap".into());
                }
                let mut topo = state.topo.clone();
                apply_two_swap(&mut topo.graph, &swap).expect("validated");
                self.evaluate_structural(state, &topo, ladder, floor)
            }
            MoveKind::Expand {
                network_degree,
                class,
            } => {
                let mut topo = state.topo.clone();
                let mut rng = StdRng::seed_from_u64(apply_seed);
                if let Err(e) =
                    expand_random(&mut topo, network_degree, network_degree, class, &mut rng)
                {
                    return Outcome::Invalid(e.to_string());
                }
                self.evaluate_structural(state, &topo, ladder, floor)
            }
        }
    }

    /// Levels 0–2 for a structurally-changed candidate topology.
    fn evaluate_structural(
        &self,
        state: &State,
        topo: &Topology,
        ladder: bool,
        floor: f64,
    ) -> Outcome {
        // level 0: the hop bound must strictly improve. The workspace
        // is thread-local: candidate evaluations fan out over the pool
        // every round, and a per-candidate allocation here was the
        // dominant level-0 cost at scale.
        thread_local! {
            static HOP_WS: std::cell::RefCell<MsBfsWorkspace> =
                std::cell::RefCell::default();
        }
        let alpha =
            HOP_WS.with(|ws| hop_alpha(&topo.graph, &self.commodities, &mut ws.borrow_mut()));
        if alpha.is_infinite() {
            return Outcome::Invalid("rewire disconnects a commodity".into());
        }
        let hop = hop_bound(state.plan.effective_capacity(topo), alpha);
        let passed_hop = hop > state.incumbent.hop_bound;
        if ladder && !passed_hop {
            return Outcome::PrunedHop { hop_bound: hop };
        }
        // level 1: the cut bound must leave the candidate acceptable
        let cut = self.cut_bound_of(topo, &state.plan);
        let passed_cut = cut > floor;
        if ladder && !passed_cut {
            return Outcome::PrunedCut {
                hop_bound: hop,
                cut_bound: cut,
            };
        }
        // level 2: certified solve on a fresh net (+ plan view)
        let net = CsrNet::from_graph(&topo.graph);
        let view = match state.plan.view(topo, &net) {
            Ok(v) => v,
            Err(e) => return Outcome::Invalid(e.to_string()),
        };
        match self.certify(&view, true) {
            Ok(s) => Outcome::Certified(Certificate {
                lambda: s.throughput,
                upper: s.upper_bound,
                hop_bound: hop,
                cut_bound: cut,
                hop_alpha: alpha,
                settles: s.settles,
                passed_hop,
                passed_cut,
            }),
            Err(e) => Outcome::Invalid(e.to_string()),
        }
    }

    /// The level-1 surrogate for a configuration.
    fn cut_bound_of(&self, topo: &Topology, plan: &CapacityPlan) -> f64 {
        min_cut_bound(&topo.graph, &self.probes, |e| {
            let edge = topo.graph.edge(e);
            let mult = plan
                .group_of(topo, edge.u, edge.v)
                .map_or(1.0, |g| plan.multiplier(g));
            edge.capacity * mult
        })
    }

    /// Certified solve: structural candidates solve cold (their nets
    /// are fresh structures), capacity candidates go through the shared
    /// path-set cache (same `structure_id` as the base, so `ksp`
    /// backends refreeze nothing).
    fn certify(&self, net: &CsrNet, structural: bool) -> Result<SolvedFlow, FlowError> {
        if structural {
            dctopo_flow::solve(net, &self.commodities, &self.spec.opts)
        } else {
            dctopo_flow::solve_with_cache(net, &self.commodities, &self.spec.opts, &self.cache)
        }
    }

    /// Pick the accepted candidate of a round, if any: the highest
    /// certified λ among gate-passing strict improvers (ties to the
    /// lowest index), else — at positive temperature — a Metropolis
    /// coin on the best gate-passing candidate.
    fn choose(
        &self,
        candidates: &[Candidate],
        state: &State,
        round: usize,
        temperature: f64,
    ) -> Option<usize> {
        let eligible = |c: &Candidate| {
            c.certificate()
                .filter(|cert| cert.passed_hop && cert.passed_cut)
                .map(|cert| cert.lambda)
        };
        let mut best: Option<(usize, f64)> = None;
        for c in candidates {
            if let Some(lambda) = eligible(c) {
                if lambda > state.incumbent.lambda && best.is_none_or(|(_, b)| lambda > b) {
                    best = Some((c.index, lambda));
                }
            }
        }
        if let Some((idx, _)) = best {
            return Some(idx);
        }
        if temperature <= 0.0 {
            return None;
        }
        // annealing: best gate-passing candidate, Metropolis-accepted
        let mut best_any: Option<(usize, f64)> = None;
        for c in candidates {
            if let Some(lambda) = eligible(c) {
                if best_any.is_none_or(|(_, b)| lambda > b) {
                    best_any = Some((c.index, lambda));
                }
            }
        }
        let (idx, lambda) = best_any?;
        let inc = state.incumbent.lambda;
        if inc <= 0.0 || lambda < self.prune_floor(inc, temperature) {
            return None;
        }
        let p = ((lambda - inc) / (temperature * inc)).exp().min(1.0);
        let mut rng = StdRng::seed_from_u64(derive_seed(self.spec.seed, DOMAIN_ACCEPT, round, 0));
        (rng.random_range(0.0..1.0) < p).then_some(idx)
    }

    /// Replay an accepted move onto the state and install its
    /// certificate as the new incumbent.
    fn apply(
        &self,
        state: &mut State,
        kind: MoveKind,
        apply_seed: u64,
        cert: Certificate,
    ) -> Result<(), dctopo_graph::GraphError> {
        match kind {
            MoveKind::TwoSwap(swap) => {
                apply_two_swap(&mut state.topo.graph, &swap)?;
                state.base_net = CsrNet::from_graph(&state.topo.graph);
                // frozen path sets of the old structure can never be
                // queried again; drop them rather than accumulate
                self.cache.clear();
            }
            MoveKind::Expand {
                network_degree,
                class,
            } => {
                let mut rng = StdRng::seed_from_u64(apply_seed);
                expand_random(
                    &mut state.topo,
                    network_degree,
                    network_degree,
                    class,
                    &mut rng,
                )?;
                state.base_net = CsrNet::from_graph(&state.topo.graph);
                self.cache.clear();
            }
            MoveKind::ShiftCapacity {
                donor,
                receiver,
                step,
            } => {
                let budget = self.spec.capacity.expect("capacity family enabled");
                state.plan = state
                    .plan
                    .shifted(
                        &state.topo,
                        donor,
                        receiver,
                        step,
                        budget.min_mult,
                        budget.max_mult,
                    )
                    .expect("accepted shift was valid at evaluation time");
            }
        }
        state.incumbent = cert;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctopo_graph::Graph;
    use dctopo_topology::hetero::{two_cluster, CrossSpec};
    use dctopo_topology::{ClusterSpec, SwitchClass};

    fn opts() -> FlowOptions {
        FlowOptions {
            epsilon: 0.12,
            target_gap: 0.05,
            max_phases: 1200,
            stall_phases: 80,
            ..FlowOptions::fast()
        }
    }

    /// A ring of `n` switches with one server each — deliberately far
    /// from the Moore bound, so structural search has room to improve.
    fn ring_topo(n: usize) -> Topology {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        Topology {
            graph: g,
            servers_at: vec![1; n],
            class_of: vec![0; n],
            classes: vec![SwitchClass {
                name: "tor".into(),
                ports: 3,
            }],
            unused_ports: 0,
        }
    }

    fn scarce_cross_topo(seed: u64) -> Topology {
        let mut rng = StdRng::seed_from_u64(seed);
        two_cluster(
            ClusterSpec {
                count: 6,
                ports: 10,
                servers_per_switch: 3,
            },
            ClusterSpec {
                count: 6,
                ports: 8,
                servers_per_switch: 2,
            },
            CrossSpec::Exact(3),
            &mut rng,
        )
        .unwrap()
    }

    fn perm(topo: &Topology, seed: u64) -> TrafficMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        TrafficMatrix::random_permutation(topo.server_count(), &mut rng)
    }

    #[test]
    fn structural_search_improves_a_ring() {
        let topo = ring_topo(12);
        let tm = perm(&topo, 1);
        let spec = SearchSpec::structural(7, 6, 8).with_opts(opts());
        let result = SearchRunner::new(&topo, &tm, spec).unwrap().run().unwrap();
        assert!(
            !result.accepted.is_empty(),
            "a ring must admit improving rewires"
        );
        assert!(
            result.improvement() > 0.05,
            "ring improvement only {:.2}%",
            result.improvement() * 100.0
        );
        // degree sequence (and port budgets) survive every rewire
        assert_eq!(result.topology.graph.regular_degree(), Some(2));
        result.topology.validate_ports().unwrap();
        // incumbent λ never decreases in greedy mode
        let mut last = result.initial.lambda;
        for mv in &result.accepted {
            assert!(mv.certificate.lambda > last);
            last = mv.certificate.lambda;
        }
        assert_eq!(last.to_bits(), result.best.lambda.to_bits());
    }

    #[test]
    fn every_accepted_move_passed_its_gates_and_bounds() {
        let topo = ring_topo(12);
        let tm = perm(&topo, 1);
        let spec = SearchSpec::structural(7, 6, 8).with_opts(opts());
        let result = SearchRunner::new(&topo, &tm, spec).unwrap().run().unwrap();
        for mv in &result.accepted {
            let c = &mv.certificate;
            assert!(c.passed_hop && c.passed_cut, "move accepted past a gate");
            // the surrogate bounds are *hard*: certified λ must respect
            // both, so the ladder never certifies what its own levels
            // would refute
            assert!(c.lambda <= c.hop_bound * (1.0 + 1e-9));
            assert!(c.lambda <= c.cut_bound * (1.0 + 1e-9));
            assert!(c.lambda <= c.upper * (1.0 + 1e-9));
        }
        // every certified candidate in the trace passed its gates (the
        // Ladder contract: no certification without a full climb)
        for round in &result.rounds {
            for cand in &round.candidates {
                if let Outcome::Certified(c) = &cand.outcome {
                    assert!(c.passed_hop && c.passed_cut);
                }
            }
        }
    }

    #[test]
    fn ladder_and_certify_all_accept_identically() {
        let topo = ring_topo(12);
        let tm = perm(&topo, 3);
        let base = SearchSpec::structural(11, 5, 8).with_opts(opts());
        let ladder = SearchRunner::new(&topo, &tm, base.clone())
            .unwrap()
            .run()
            .unwrap();
        let all = SearchRunner::new(&topo, &tm, base.with_fidelity(Fidelity::CertifyAll))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(ladder.accepted.len(), all.accepted.len());
        for (a, b) in ladder.accepted.iter().zip(&all.accepted) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.index, b.index);
            assert_eq!(a.kind, b.kind);
            assert_eq!(
                a.certificate.lambda.to_bits(),
                b.certificate.lambda.to_bits()
            );
        }
        assert_eq!(
            ladder.best.lambda.to_bits(),
            all.best.lambda.to_bits(),
            "final configuration diverged between fidelity modes"
        );
        assert_eq!(
            ladder.topology.graph.edges(),
            all.topology.graph.edges(),
            "final topology diverged between fidelity modes"
        );
        // the ladder must actually have certified less
        assert!(ladder.certified_solves <= all.certified_solves);
        assert!(ladder.pruned_hop() + ladder.pruned_cut() > 0);
        assert_eq!(all.pruned_hop() + all.pruned_cut(), 0);
    }

    #[test]
    fn capacity_search_moves_budget_toward_the_scarce_cut() {
        let topo = scarce_cross_topo(5);
        let tm = perm(&topo, 5);
        let spec = SearchSpec::capacity(9, 8, 6, CapacityBudget::default()).with_opts(opts());
        let runner = SearchRunner::new(&topo, &tm, spec).unwrap();
        let result = runner.run().unwrap();
        assert!(
            !result.accepted.is_empty(),
            "scarce cross links must attract budget"
        );
        assert!(result.improvement() > 0.0);
        // the budget is conserved across the whole search
        let before = CapacityPlan::uniform(&topo).effective_capacity(&topo);
        let after = result.plan.effective_capacity(&result.topology);
        assert!(
            (before - after).abs() < 1e-9 * before,
            "budget drifted {before} -> {after}"
        );
        // capacity moves never touch the structure
        assert_eq!(result.topology.graph.edges(), topo.graph.edges());
        // and the winning plan up-rates the cross group: every accepted
        // move's certificate raised λ, which on this instance is cut
        // limited by the large-small group
        let cross_group = (0..result.plan.group_count())
            .find(|&g| result.plan.group_classes(g) == (0, 1))
            .expect("cross group exists");
        assert!(
            result.plan.multiplier(cross_group) > 1.0,
            "cross-group multiplier {} should exceed 1",
            result.plan.multiplier(cross_group)
        );
    }

    #[test]
    fn reruns_are_bit_identical() {
        let topo = scarce_cross_topo(2);
        let tm = perm(&topo, 2);
        let mk = || {
            let mut spec = SearchSpec::structural(13, 4, 6).with_opts(opts());
            spec.capacity = Some(CapacityBudget::default());
            spec
        };
        let a = SearchRunner::new(&topo, &tm, mk()).unwrap().run().unwrap();
        let b = SearchRunner::new(&topo, &tm, mk()).unwrap().run().unwrap();
        assert_eq!(a.best.lambda.to_bits(), b.best.lambda.to_bits());
        assert_eq!(a.best.upper.to_bits(), b.best.upper.to_bits());
        assert_eq!(a.accepted.len(), b.accepted.len());
        assert_eq!(a.certified_solves, b.certified_solves);
        assert_eq!(a.total_settles, b.total_settles);
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.candidates.len(), y.candidates.len());
            for (cx, cy) in x.candidates.iter().zip(&y.candidates) {
                assert_eq!(cx.kind, cy.kind);
                assert_eq!(cx.outcome, cy.outcome);
            }
        }
    }

    #[test]
    fn growth_moves_insert_switches_without_breaking_ports() {
        let topo = ring_topo(10);
        let tm = perm(&topo, 4);
        let mut spec = SearchSpec::structural(21, 4, 6).with_opts(opts());
        spec.structural = false;
        spec.grow = Some(GrowSpec {
            network_degree: 2,
            class: 0,
        });
        let result = SearchRunner::new(&topo, &tm, spec).unwrap().run().unwrap();
        // growth adds capacity, so accepted expansions strictly help
        for mv in &result.accepted {
            assert!(matches!(mv.kind, MoveKind::Expand { .. }));
        }
        let grown = result.topology.switch_count() - topo.switch_count();
        assert_eq!(grown, result.accepted.len());
        result.topology.validate_ports().unwrap();
        // commodity endpoints (original switches) kept their degree
        for v in 0..topo.switch_count() {
            assert_eq!(result.topology.graph.degree(v), 2);
        }
    }

    #[test]
    fn annealing_is_deterministic_and_bounded() {
        let topo = ring_topo(12);
        let tm = perm(&topo, 6);
        let mk = || {
            SearchSpec::structural(17, 4, 6)
                .with_opts(opts())
                .with_temperature(0.05, 0.8)
        };
        let a = SearchRunner::new(&topo, &tm, mk()).unwrap().run().unwrap();
        let b = SearchRunner::new(&topo, &tm, mk()).unwrap().run().unwrap();
        assert_eq!(a.best.lambda.to_bits(), b.best.lambda.to_bits());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.accepted, y.accepted);
        }
        // annealing may accept downhill moves, but never below the
        // 3T window around the then-incumbent
        for mv in &a.accepted {
            let floor = mv.lambda_before * (1.0 - 3.0 * a.rounds[mv.round].temperature);
            assert!(mv.certificate.lambda >= floor - 1e-12);
        }
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        let topo = ring_topo(8);
        let tm = perm(&topo, 1);
        // no family enabled
        let mut spec = SearchSpec::structural(1, 1, 1);
        spec.structural = false;
        assert!(matches!(
            SearchRunner::new(&topo, &tm, spec),
            Err(FlowError::BadOptions(_))
        ));
        // capacity search on a single-group topology
        let spec = SearchSpec::capacity(1, 1, 1, CapacityBudget::default());
        assert!(matches!(
            SearchRunner::new(&topo, &tm, spec),
            Err(FlowError::BadOptions(_))
        ));
        // odd growth degree
        let mut spec = SearchSpec::structural(1, 1, 1);
        spec.grow = Some(GrowSpec {
            network_degree: 3,
            class: 0,
        });
        assert!(matches!(
            SearchRunner::new(&topo, &tm, spec),
            Err(FlowError::BadOptions(_))
        ));
        // all-local traffic: no network objective
        let local = TrafficMatrix::from_pairs(8, vec![]);
        assert!(matches!(
            SearchRunner::new(&topo, &local, SearchSpec::structural(1, 1, 1)),
            Err(FlowError::NoCommodities)
        ));
    }
}
