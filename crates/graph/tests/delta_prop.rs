//! Property test: delta-stepping SSSP is bitwise-equal to the binary
//! heap Dijkstra on 50 seeded weighted nets at 1, 2, and 8 rayon
//! threads — the determinism contract the FPTAS's dual-length passes
//! (and the 1/2/8-thread solver pin) rest on.
//!
//! Lengths are drawn across six orders of magnitude, mimicking the
//! multiplicatively-updated FPTAS length functions where
//! float-absorption plateaus actually occur; a slice of each net's
//! arcs is additionally given *equal* lengths to force ties.

use dctopo_graph::{delta, CsrNet, DijkstraWorkspace, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random weighted net plus per-arc lengths. Every fourth
/// seed splits the nodes into two disconnected halves.
fn random_net(seed: u64) -> (CsrNet, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2..=150usize);
    let m = rng.random_range(1..=4 * n);
    let split = seed.is_multiple_of(4);
    let cut = n / 2;
    let mut g = Graph::new(n);
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || (split && (u < cut) != (v < cut)) {
            continue;
        }
        g.add_edge(u, v, rng.random_range(0.5..4.0)).expect("valid");
    }
    let net = CsrNet::from_graph(&g);
    let tie = rng.random_range(1e-3..1e3);
    let lens: Vec<f64> = (0..net.arc_count())
        .map(|_| {
            if rng.random_bool(0.25) {
                tie // shared exact value → distance ties and plateaus
            } else {
                let mag: f64 = rng.random_range(-3.0..3.0);
                rng.random_range(1.0..10.0) * 10f64.powf(mag)
            }
        })
        .collect();
    (net, lens)
}

#[test]
fn delta_sssp_matches_heap_dijkstra_at_1_2_8_threads() {
    for seed in 0..50u64 {
        let (net, lens) = random_net(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5551);
        let src = rng.random_range(0..net.node_count());

        let mut heap_ws = DijkstraWorkspace::default();
        net.dijkstra(src, &lens, &mut heap_ws);
        let reference: Vec<u64> = (0..net.node_count())
            .map(|v| heap_ws.distance(v).to_bits())
            .collect();

        let mut parents_at: Vec<Vec<Option<usize>>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build pool");
            let mut ws = DijkstraWorkspace::default();
            pool.install(|| delta::sssp(&net, src, &lens, &mut ws));
            for (v, &expect) in reference.iter().enumerate() {
                assert_eq!(
                    ws.distance(v).to_bits(),
                    expect,
                    "seed {seed}: node {v} distance diverged from the \
                     heap Dijkstra at {threads} thread(s)"
                );
            }
            parents_at.push((0..net.node_count()).map(|v| ws.parent(v)).collect());
        }
        // the tree tie-breaking is thread-count-invariant too
        assert_eq!(parents_at[0], parents_at[1], "seed {seed}: 1 vs 2 threads");
        assert_eq!(parents_at[0], parents_at[2], "seed {seed}: 1 vs 8 threads");
    }
}
