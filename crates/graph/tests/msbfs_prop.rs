//! Property test: batched multi-source BFS is bitwise-equal to one
//! scalar BFS per source, across 50 seeded random graphs including
//! deliberately disconnected ones and degraded [`CsrNet`] delta views.
//!
//! Hop distances are exact `u32` level counts, so "bitwise" here is
//! plain integer equality lane by lane — any divergence (including in
//! the direction-optimizing bottom-up sweep) is a hard failure, not a
//! tolerance question.

use dctopo_graph::paths::bfs_distances;
use dctopo_graph::{ms_bfs, ms_bfs_csr, CsrNet, Graph, MsBfsWorkspace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random multigraph. Every third seed splits the nodes into
/// two halves with no crossing edges, guaranteeing disconnection (and
/// isolated nodes appear naturally at low edge counts).
fn random_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2..=120usize);
    let m = rng.random_range(0..=3 * n);
    let split = seed.is_multiple_of(3);
    let cut = n / 2;
    let mut g = Graph::new(n);
    for _ in 0..m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        if split && (u < cut) != (v < cut) {
            continue;
        }
        g.add_unit_edge(u, v).expect("valid edge");
    }
    g
}

/// Up to 64 distinct sources, order shuffled by the seed.
fn random_sources(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    for i in (1..all.len()).rev() {
        all.swap(i, rng.random_range(0..=i));
    }
    all.truncate(n.min(64));
    all
}

#[test]
fn ms_bfs_matches_scalar_bfs_on_50_seeded_graphs() {
    let mut ws = MsBfsWorkspace::default();
    for seed in 0..50u64 {
        let g = random_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBF5F);
        let sources = random_sources(&mut rng, g.node_count());
        ms_bfs(&g, &sources, &mut ws);
        assert_eq!(ws.lane_count(), sources.len());
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(
                ws.lane_distances(lane),
                &bfs_distances(&g, s)[..],
                "seed {seed}: lane {lane} (source {s}) diverged from scalar BFS"
            );
        }
    }
}

#[test]
fn ms_bfs_csr_matches_scalar_bfs_on_degraded_views() {
    let mut ws = MsBfsWorkspace::default();
    for seed in 0..50u64 {
        let g = random_graph(seed);
        let net = CsrNet::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
        // fail up to a third of the links (both arcs go together),
        // pushing many seeds into disconnection
        let kill: Vec<usize> = (0..net.arc_count())
            .filter(|_| rng.random_bool(0.33))
            .collect();
        let view = if kill.is_empty() {
            net.clone()
        } else {
            net.with_disabled_arcs(&kill).expect("arcs in range")
        };
        let sources = random_sources(&mut rng, view.node_count());
        ms_bfs_csr(&view, &sources, &mut ws);
        // the scalar reference sees exactly the view's live adjacency
        let live = view.to_graph();
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(
                ws.lane_distances(lane),
                &bfs_distances(&live, s)[..],
                "seed {seed}: lane {lane} (source {s}) diverged on the degraded view"
            );
        }
    }
}
