//! The capacitated multigraph data structure.
//!
//! [`Graph`] stores an undirected multigraph whose edges carry a capacity.
//! Flow algorithms consume the *arc view*: every undirected edge `e`
//! contributes two directed arcs `2e` (from `u` to `v`) and `2e + 1` (from
//! `v` to `u`), each with the full edge capacity. This mirrors the paper's
//! model where "each network edge is of unit capacity ... counting both
//! directions".

use crate::GraphError;

/// Dense node index. Nodes are `0..n`.
pub type NodeId = usize;
/// Index of an undirected edge.
pub type EdgeId = usize;
/// Index of a directed arc; arc `2e` is edge `e` oriented `u -> v`,
/// arc `2e + 1` is the reverse orientation.
pub type ArcId = usize;

/// One undirected capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Capacity available in *each* direction.
    pub capacity: f64,
}

/// An undirected capacitated multigraph with a directed arc view.
///
/// Parallel edges are allowed (the heterogeneous line-speed experiments
/// add extra high-speed trunks between switch pairs); self-loops are not.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency: for each node, the list of `(edge id, other endpoint)`.
    adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// Create an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed arcs (always `2 * edge_count`).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.edges.len() * 2
    }

    /// Append an isolated node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.n += 1;
        self.n - 1
    }

    /// Add an undirected edge with the given capacity per direction.
    ///
    /// Returns the new edge id. Parallel edges are permitted; self-loops
    /// and non-positive or non-finite capacities are rejected.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, capacity: f64) -> Result<EdgeId, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(GraphError::BadCapacity { capacity });
        }
        let id = self.edges.len();
        self.edges.push(Edge { u, v, capacity });
        self.adj[u].push((id, v));
        self.adj[v].push((id, u));
        Ok(id)
    }

    /// Add an edge of unit capacity.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        self.add_edge(u, v, 1.0)
    }

    /// The undirected edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// All undirected edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of `v` counting parallel edges.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Iterator over `(edge id, neighbor)` pairs incident to `v`.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[v]
    }

    /// Iterator over the neighbors of `v` (with multiplicity).
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v].iter().map(|&(_, w)| w)
    }

    /// Whether at least one edge connects `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // iterate over the smaller adjacency list
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].iter().any(|&(_, w)| w == b)
    }

    /// Some edge id connecting `u` and `v`, if any.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].iter().find(|&&(_, w)| w == b).map(|&(e, _)| e)
    }

    /// Total capacity counting both directions (the paper's `C`):
    /// `sum over edges of 2 * capacity`.
    pub fn total_capacity(&self) -> f64 {
        2.0 * self.edges.iter().map(|e| e.capacity).sum::<f64>()
    }

    // ---- arc view -------------------------------------------------------

    /// Tail (source) of the directed arc.
    #[inline]
    pub fn arc_tail(&self, a: ArcId) -> NodeId {
        let e = &self.edges[a >> 1];
        if a & 1 == 0 {
            e.u
        } else {
            e.v
        }
    }

    /// Head (target) of the directed arc.
    #[inline]
    pub fn arc_head(&self, a: ArcId) -> NodeId {
        let e = &self.edges[a >> 1];
        if a & 1 == 0 {
            e.v
        } else {
            e.u
        }
    }

    /// Capacity of the directed arc (equal to the undirected capacity).
    #[inline]
    pub fn arc_capacity(&self, a: ArcId) -> f64 {
        self.edges[a >> 1].capacity
    }

    /// The undirected edge underlying an arc.
    #[inline]
    pub fn arc_edge(&self, a: ArcId) -> EdgeId {
        a >> 1
    }

    /// The arc between `tail` and `head` realised by edge `e`.
    #[inline]
    pub fn arc_of(&self, e: EdgeId, tail: NodeId) -> ArcId {
        if self.edges[e].u == tail {
            e << 1
        } else {
            debug_assert_eq!(self.edges[e].v, tail);
            (e << 1) | 1
        }
    }

    /// Outgoing arcs of `v` as `(arc id, head)` pairs.
    pub fn out_arcs(&self, v: NodeId) -> impl Iterator<Item = (ArcId, NodeId)> + '_ {
        self.adj[v]
            .iter()
            .map(move |&(e, w)| (self.arc_of(e, v), w))
    }

    /// Remove edge `e` by swapping in the last edge (O(degree) work).
    ///
    /// Edge ids are *not* stable across removals: the previously-last edge
    /// takes over id `e`. This is only used internally by the swap
    /// machinery and by topology builders before any edge ids escape.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let last = self.edges.len() - 1;
        let removed = self.edges[e];
        self.adj[removed.u].retain(|&(id, _)| id != e);
        self.adj[removed.v].retain(|&(id, _)| id != e);
        if e != last {
            let moved = self.edges[last];
            for &(node, _) in &[(moved.u, ()), (moved.v, ())] {
                for entry in self.adj[node].iter_mut() {
                    if entry.0 == last {
                        entry.0 = e;
                    }
                }
            }
            self.edges.swap(e, last);
        }
        self.edges.pop();
    }

    /// Degree sequence `deg[v]` for all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|v| self.degree(v)).collect()
    }

    /// Check every node has the same degree `r`; returns `r` if so.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let r = self.degree(0);
        (1..self.n).all(|v| self.degree(v) == r).then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(1, 2).unwrap();
        g.add_unit_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.total_capacity(), 6.0);
        assert_eq!(g.degrees(), vec![2, 2, 2]);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_unit_edge(0, 5),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_unit_edge(1, 1),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0.0),
            Err(GraphError::BadCapacity { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::BadCapacity { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::INFINITY),
            Err(GraphError::BadCapacity { .. })
        ));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        g.add_edge(0, 1, 10.0).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.total_capacity(), 22.0);
    }

    #[test]
    fn arc_view_orientations() {
        let mut g = Graph::new(3);
        let e = g.add_edge(1, 2, 4.0).unwrap();
        let fwd = e << 1;
        let bwd = fwd | 1;
        assert_eq!(g.arc_tail(fwd), 1);
        assert_eq!(g.arc_head(fwd), 2);
        assert_eq!(g.arc_tail(bwd), 2);
        assert_eq!(g.arc_head(bwd), 1);
        assert_eq!(g.arc_capacity(fwd), 4.0);
        assert_eq!(g.arc_capacity(bwd), 4.0);
        assert_eq!(g.arc_edge(bwd), e);
        assert_eq!(g.arc_of(e, 1), fwd);
        assert_eq!(g.arc_of(e, 2), bwd);
    }

    #[test]
    fn out_arcs_cover_neighbors() {
        let g = triangle();
        let outs: Vec<_> = g.out_arcs(1).collect();
        assert_eq!(outs.len(), 2);
        for (a, head) in outs {
            assert_eq!(g.arc_tail(a), 1);
            assert_eq!(g.arc_head(a), head);
        }
    }

    #[test]
    fn remove_edge_swaps_last() {
        let mut g = triangle();
        g.remove_edge(0); // removes 0-1, edge 2 (2-0) takes id 0
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 0));
        // adjacency still consistent
        for v in 0..3 {
            for &(e, w) in g.incident(v) {
                let edge = g.edge(e);
                assert!((edge.u == v && edge.v == w) || (edge.v == v && edge.u == w));
            }
        }
    }

    #[test]
    fn add_node_grows() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v, 3);
        assert_eq!(g.degree(v), 0);
        g.add_unit_edge(v, 0).unwrap();
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn find_edge_on_multigraph() {
        let mut g = Graph::new(3);
        let e0 = g.add_unit_edge(0, 1).unwrap();
        let _e1 = g.add_unit_edge(0, 1).unwrap();
        let found = g.find_edge(1, 0).unwrap();
        assert!(found == e0 || found == _e1);
        assert!(g.find_edge(1, 2).is_none());
    }
}
