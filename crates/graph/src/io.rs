//! Graph interchange: Graphviz DOT output and a plain capacitated
//! edge-list format (write + parse), so topologies built here can be
//! inspected with standard tooling and instances can round-trip through
//! files.
//!
//! The edge-list format is one edge per line, `u v capacity`, with `#`
//! comments and a leading `nodes N` header:
//!
//! ```text
//! # dctopo edge list
//! nodes 4
//! 0 1 1
//! 1 2 10
//! ```

use std::fmt::Write as _;

use crate::{Graph, GraphError};

/// Render the graph as Graphviz DOT. `label` names the graph; edges with
/// capacity ≠ 1 get a `label` and thicker pens so heterogeneous
/// line-speeds are visible at a glance.
pub fn to_dot(g: &Graph, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(label));
    let _ = writeln!(out, "  node [shape=circle];");
    for v in 0..g.node_count() {
        let _ = writeln!(out, "  n{v};");
    }
    for e in g.edges() {
        if (e.capacity - 1.0).abs() < 1e-12 {
            let _ = writeln!(out, "  n{} -- n{};", e.u, e.v);
        } else {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\", penwidth={}];",
                e.u,
                e.v,
                e.capacity,
                (e.capacity.log2().max(0.0) + 1.0).min(6.0)
            );
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(label: &str) -> String {
    let cleaned: String = label
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

/// Serialise as the capacitated edge-list format described in the module
/// docs.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# dctopo edge list");
    let _ = writeln!(out, "nodes {}", g.node_count());
    for e in g.edges() {
        if (e.capacity - e.capacity.round()).abs() < 1e-12 {
            let _ = writeln!(out, "{} {} {}", e.u, e.v, e.capacity as i64);
        } else {
            let _ = writeln!(out, "{} {} {}", e.u, e.v, e.capacity);
        }
    }
    out
}

/// Parse the edge-list format. Accepts `#` comments and blank lines; the
/// capacity column is optional (default 1).
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut g: Option<Graph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line");
        if first == "nodes" {
            let n: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad(lineno, "expected `nodes N`"))?;
            if g.is_some() {
                return Err(bad(lineno, "duplicate `nodes` header"));
            }
            g = Some(Graph::new(n));
            continue;
        }
        let graph = g
            .as_mut()
            .ok_or_else(|| bad(lineno, "edge before `nodes` header"))?;
        let u: usize = first.parse().map_err(|_| bad(lineno, "bad node id"))?;
        let v: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad(lineno, "missing second endpoint"))?;
        let cap: f64 = match parts.next() {
            Some(t) => t.parse().map_err(|_| bad(lineno, "bad capacity"))?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(bad(lineno, "trailing tokens"));
        }
        graph.add_edge(u, v, cap)?;
    }
    g.ok_or_else(|| GraphError::Unrealizable("no `nodes` header found".into()))
}

fn bad(lineno: usize, msg: &str) -> GraphError {
    GraphError::Unrealizable(format!("edge list line {}: {msg}", lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_edge(1, 2, 10.0).unwrap();
        g.add_edge(2, 3, 2.5).unwrap();
        g
    }

    #[test]
    fn dot_mentions_all_edges_and_capacities() {
        let dot = to_dot(&sample(), "my graph 1");
        assert!(dot.starts_with("graph my_graph_1 {"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2 [label=\"10\""));
        assert!(dot.contains("n2 -- n3 [label=\"2.5\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_label_sanitised() {
        assert!(to_dot(&Graph::new(1), "42abc").starts_with("graph g_42abc"));
        assert!(to_dot(&Graph::new(1), "").starts_with("graph g_"));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (a, b) in g.edges().iter().zip(back.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.capacity - b.capacity).abs() < 1e-12);
        }
    }

    #[test]
    fn parser_accepts_comments_and_default_capacity() {
        let text = "# hello\nnodes 3\n0 1   # inline comment\n1 2 4\n\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge(0).capacity, 1.0);
        assert_eq!(g.edge(1).capacity, 4.0);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_edge_list("0 1 1\n").is_err()); // edge before header
        assert!(from_edge_list("nodes 2\nnodes 2\n").is_err()); // dup header
        assert!(from_edge_list("nodes 2\n0\n").is_err()); // missing endpoint
        assert!(from_edge_list("nodes 2\n0 1 1 9\n").is_err()); // trailing
        assert!(from_edge_list("nodes 2\n0 5 1\n").is_err()); // out of range
        assert!(from_edge_list("").is_err()); // empty
        assert!(from_edge_list("nodes x\n").is_err()); // bad header
    }
}
