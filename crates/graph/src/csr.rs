//! Compact CSR (compressed sparse row) arc representation of a
//! [`Graph`], plus reusable Dijkstra scratch state.
//!
//! ## Why this exists
//!
//! Every experiment in the paper reduces to solving max concurrent flow,
//! and the solver's inner loop is single-source Dijkstra repeated
//! thousands of times with re-weighted arc lengths. Traversing
//! [`Graph`]'s nested `Vec<Vec<(EdgeId, NodeId)>>` adjacency pays a
//! pointer chase per neighbor and recomputes arc orientation
//! (`arc_of`) on every visit. [`CsrNet`] is built **once** per topology
//! and flattens everything the hot loop touches into contiguous arrays:
//!
//! * `row[v]..row[v+1]` indexes the out-arc slots of node `v`,
//! * `adj_arc` / `adj_head` give the arc id and head node per slot,
//! * `capacity` / `inv_capacity` are indexed directly by [`ArcId`].
//!
//! **Arc ids are preserved exactly**: arc `2e` is edge `e` oriented
//! `u → v`, arc `2e + 1` the reverse, so flow vectors produced against a
//! `CsrNet` index interchangeably with the original [`Graph`].
//!
//! [`DijkstraWorkspace`] owns the distance and parent arrays plus an
//! indexed (decrease-key, duplicate-free) flat 4-ary heap of
//! integer-packed keys, so repeated [`CsrNet::dijkstra`] calls allocate
//! nothing after warm-up and every heap pop settles a node.
//!
//! The traversal order (adjacency order, heap tie-broken by node id)
//! matches [`crate::paths::dijkstra`] operation-for-operation, so
//! distances agree **bitwise** with the legacy implementation — seeded
//! experiments produce identical numbers whichever path computes them.
//!
//! ## Delta views (failure / degradation scenarios)
//!
//! Scenario sweeps evaluate hundreds of *degraded* variants of one base
//! topology — links failed, switches failed, capacities scaled or mixed.
//! Rebuilding a [`Graph`] and re-flattening per variant would dominate
//! the sweep, so `CsrNet` supports **cheap delta views**:
//!
//! * [`CsrNet::with_disabled_arcs`] — fail whole edges (both directions
//!   of every listed arc). Disabled arcs keep their [`ArcId`] but leave
//!   the adjacency and carry capacity `0.0` (`inv_capacity` `0.0` too,
//!   so length vectors seeded from `inv_capacities` stay finite).
//! * [`CsrNet::with_capacity_overrides`] /
//!   [`CsrNet::with_scaled_capacity`] — re-rate edges without touching
//!   the adjacency structure.
//!
//! All views share the untouched arrays with their base via `Arc` (a
//! capacity view copies only the two capacity arrays; a failure view
//! additionally rebuilds the adjacency in one O(n + m) pass), and **arc
//! ids are stable across views**, so flow vectors, frozen path sets, and
//! degradation lists index identically into every view of one base net.
//!
//! Two identity tokens police downstream caches: [`CsrNet::id`] is fresh
//! on every view (id equality ⇒ full content equality, the PR-2 cache
//! invalidation contract), while [`CsrNet::structure_id`] is *preserved*
//! by capacity-only views (structure_id equality ⇒ identical node set +
//! adjacency + arc numbering), which is exactly the validity condition
//! for hop-metric path-set caches.
//!
//! ## Views compose (views of views)
//!
//! Every view constructor takes `&self`, so views stack: the
//! reconfiguration planner materialises each migration prefix as
//! `base.with_capacity_overrides(..)?.with_disabled_arcs(..)?` and the
//! scenario engine composes ordered degradations the same way. The
//! composition laws, pinned bitwise by the `view_composition_*`
//! regression tests:
//!
//! * **Disable ∘ disable = disable of the union.** Stacked
//!   [`CsrNet::with_disabled_arcs`] views equal the single view built
//!   from the concatenated arc lists — same capacities, adjacency, and
//!   live-arc count, bit for bit. Re-disabling an already-dead arc is
//!   idempotent at any depth of the stack.
//! * **Override ∘ override = last-write-wins merge.** A later
//!   [`CsrNet::with_capacity_overrides`] replaces earlier overrides of
//!   the same edge and preserves the rest.
//! * **Override and disable commute on disjoint edges.** When no
//!   override touches a disabled edge, either stacking order yields
//!   bitwise-identical arrays. Overriding a *disabled* arc is rejected
//!   with [`GraphError::Unrealizable`] in any order (re-rating a failed
//!   link is a composition bug, not a repair mechanism), which is why
//!   planner prefix states apply capacity overrides on the fully-live
//!   base **first** and disable arcs on top.
//! * **Identity tokens survive stacking unchanged in meaning**:
//!   [`CsrNet::id`] is fresh on every materially-new view wherever it
//!   sits in a stack (no-op views — an empty override list, a disable
//!   list that kills nothing new — return plain clones with the same
//!   `id`); [`CsrNet::structure_id`] is preserved by capacity-only
//!   layers and refreshed by any layer that disables something new, so
//!   it always identifies the *net* adjacency of the whole stack.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{ArcId, Graph, GraphError, NodeId};

/// Sentinel in [`DijkstraWorkspace::parent_arc`]: no parent (source or
/// unreached node).
pub const NO_ARC: u32 = u32::MAX;

/// Process-wide counter backing [`CsrNet::id`]. Starts at 1 so 0 can
/// serve downstream code as a "no net" sentinel.
static NEXT_NET_ID: AtomicU64 = AtomicU64::new(1);

/// Immutable flat arc-level view of a [`Graph`], shared by every solver
/// backend and safe to reuse across traffic matrices and threads.
///
/// The big arrays are `Arc`-shared so that delta views (see the module
/// docs) copy only what a degradation actually changes; `Clone` is
/// always cheap and identity-preserving.
#[derive(Debug, Clone)]
pub struct CsrNet {
    /// Identity token (see [`CsrNet::id`]).
    id: u64,
    /// Structural identity token (see [`CsrNet::structure_id`]).
    structure_id: u64,
    n: usize,
    /// Directed arcs with positive capacity (present in the adjacency).
    live_arcs: usize,
    /// CSR offsets: out-arc slots of `v` are `row[v] as usize..row[v+1] as usize`.
    row: Arc<[u32]>,
    /// Arc id per adjacency slot (preserves [`Graph`] arc numbering).
    adj_arc: Arc<[u32]>,
    /// Head node per adjacency slot.
    adj_head: Arc<[u32]>,
    /// Tail node per arc (indexed by [`ArcId`]).
    arc_tail: Arc<[u32]>,
    /// Head node per arc (indexed by [`ArcId`]).
    arc_head: Arc<[u32]>,
    /// Capacity per arc (indexed by [`ArcId`]; `0.0` = disabled).
    capacity: Arc<[f64]>,
    /// `1 / capacity` per arc, precomputed for the multiplicative-weights
    /// length updates (`0.0` for disabled arcs so length vectors seeded
    /// from it stay finite).
    inv_capacity: Arc<[f64]>,
}

impl CsrNet {
    /// Flatten `g` into CSR form. `O(n + m)`.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let num_arcs = g.arc_count();
        let mut row = Vec::with_capacity(n + 1);
        let mut adj_arc = Vec::with_capacity(num_arcs);
        let mut adj_head = Vec::with_capacity(num_arcs);
        row.push(0u32);
        for v in 0..n {
            // same slot order as Graph::out_arcs so traversal order (and
            // therefore floating-point results) match paths::dijkstra
            for (a, w) in g.out_arcs(v) {
                adj_arc.push(a as u32);
                adj_head.push(w as u32);
            }
            row.push(adj_arc.len() as u32);
        }
        let mut arc_tail = vec![0u32; num_arcs];
        let mut arc_head = vec![0u32; num_arcs];
        let mut capacity = vec![0.0f64; num_arcs];
        let mut inv_capacity = vec![0.0f64; num_arcs];
        for (e, edge) in g.edges().iter().enumerate() {
            let fwd = e << 1;
            arc_tail[fwd] = edge.u as u32;
            arc_head[fwd] = edge.v as u32;
            arc_tail[fwd | 1] = edge.v as u32;
            arc_head[fwd | 1] = edge.u as u32;
            capacity[fwd] = edge.capacity;
            capacity[fwd | 1] = edge.capacity;
            inv_capacity[fwd] = 1.0 / edge.capacity;
            inv_capacity[fwd | 1] = 1.0 / edge.capacity;
        }
        let id = NEXT_NET_ID.fetch_add(1, Ordering::Relaxed);
        CsrNet {
            id,
            structure_id: id,
            n,
            live_arcs: num_arcs,
            row: row.into(),
            adj_arc: adj_arc.into(),
            adj_head: adj_head.into(),
            arc_tail: arc_tail.into(),
            arc_head: arc_head.into(),
            capacity: capacity.into(),
            inv_capacity: inv_capacity.into(),
        }
    }

    /// Process-unique identity token, assigned at [`CsrNet::from_graph`]
    /// time and **preserved by `Clone`**.
    ///
    /// A `CsrNet` is immutable, so two values sharing an id are
    /// guaranteed content-identical — which is exactly the property
    /// per-topology caches (e.g. `dctopo-flow`'s path-set cache) need in
    /// a key. Two nets built from equal graphs still get *different*
    /// ids: the token is an identity, not a structural hash. Delta views
    /// ([`CsrNet::with_disabled_arcs`] and the capacity-override
    /// constructors) change content and therefore always carry a *fresh*
    /// id, so an id-keyed cache can never serve stale data for a view.
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Structural identity token: preserved by `Clone` **and by the
    /// capacity-only views** ([`CsrNet::with_capacity_overrides`],
    /// [`CsrNet::with_scaled_capacity`]); fresh for
    /// [`CsrNet::from_graph`] and [`CsrNet::with_disabled_arcs`].
    ///
    /// structure_id equality guarantees an identical node count,
    /// adjacency (slot-for-slot), and arc numbering — capacities may
    /// differ. Caches whose payload depends only on structure (e.g.
    /// hop-metric k-shortest path sets) key on this token and so stay
    /// warm across capacity degradations of one base topology.
    #[inline]
    pub fn structure_id(&self) -> u64 {
        self.structure_id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed arcs (`2 ×` undirected edges).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.capacity.len()
    }

    /// Capacity of arc `a`.
    #[inline]
    pub fn capacity(&self, a: ArcId) -> f64 {
        self.capacity[a]
    }

    /// All arc capacities, indexed by [`ArcId`].
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// `1 / capacity` of arc `a`.
    #[inline]
    pub fn inv_capacity(&self, a: ArcId) -> f64 {
        self.inv_capacity[a]
    }

    /// All inverse capacities, indexed by [`ArcId`].
    #[inline]
    pub fn inv_capacities(&self) -> &[f64] {
        &self.inv_capacity
    }

    /// Tail (source node) of arc `a`.
    #[inline]
    pub fn arc_tail(&self, a: ArcId) -> NodeId {
        self.arc_tail[a] as NodeId
    }

    /// Head (target node) of arc `a`.
    #[inline]
    pub fn arc_head(&self, a: ArcId) -> NodeId {
        self.arc_head[a] as NodeId
    }

    /// Out-arc slots of `v` as parallel `(arc ids, heads)` slices.
    #[inline]
    pub fn out_slots(&self, v: NodeId) -> (&[u32], &[u32]) {
        let lo = self.row[v] as usize;
        let hi = self.row[v + 1] as usize;
        (&self.adj_arc[lo..hi], &self.adj_head[lo..hi])
    }

    /// Out-degree of `v` counting parallel edges.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.row[v + 1] - self.row[v]) as usize
    }

    /// The first live arc `u → v` in adjacency order, if any — the
    /// deterministic node-path → arc-path lowering rule (parallel
    /// edges resolve to the lowest slot, matching the tie-break used
    /// by the solver's tree walks).
    pub fn arc_between(&self, u: NodeId, v: NodeId) -> Option<ArcId> {
        let (arcs, heads) = self.out_slots(u);
        arcs.iter()
            .zip(heads)
            .find(|&(&a, &h)| h as usize == v && self.is_live(a as usize))
            .map(|(&a, _)| a as usize)
    }

    /// Total capacity counting both directions (the paper's `C`).
    /// Disabled arcs contribute nothing.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }

    /// Whether arc `a` is live (positive capacity, present in the
    /// adjacency). Always true on a freshly built net; false only for
    /// arcs failed by [`CsrNet::with_disabled_arcs`].
    #[inline]
    pub fn is_live(&self, a: ArcId) -> bool {
        self.capacity[a] > 0.0
    }

    /// Number of live directed arcs (`arc_count` minus disabled arcs).
    #[inline]
    pub fn live_arc_count(&self) -> usize {
        self.live_arcs
    }

    /// Delta view with the listed arcs' **edges** failed: for every arc
    /// in `arcs`, both directions of its underlying edge are removed
    /// from the adjacency and their capacities forced to `0.0` (link
    /// failures are whole-link events in the paper's model; a half-failed
    /// duplex link is not representable in the undirected [`Graph`]
    /// either).
    ///
    /// Arc ids are preserved — disabled arcs keep their slots in the
    /// arc-indexed arrays — so flow vectors and frozen path sets index
    /// interchangeably with the base net. Already-disabled arcs may be
    /// listed again (idempotent). If the list disables nothing new, the
    /// view is a plain clone (same `id`); otherwise both `id` and
    /// `structure_id` are fresh.
    ///
    /// Cost: one O(n + m) adjacency rebuild plus the two capacity-array
    /// copies; the arc tail/head arrays stay shared with the base.
    ///
    /// # Errors
    /// [`GraphError::ArcOutOfRange`] if any listed arc id is `>=`
    /// [`CsrNet::arc_count`].
    pub fn with_disabled_arcs(&self, arcs: &[ArcId]) -> Result<CsrNet, GraphError> {
        let m = self.arc_count();
        let mut kill = vec![false; m];
        let mut any_new = false;
        for &a in arcs {
            if a >= m {
                return Err(GraphError::ArcOutOfRange { arc: a, arcs: m });
            }
            let fwd = a & !1;
            if !kill[fwd] && self.is_live(fwd) {
                kill[fwd] = true;
                kill[fwd | 1] = true;
                any_new = true;
            }
        }
        if !any_new {
            return Ok(self.clone());
        }
        let mut row = Vec::with_capacity(self.n + 1);
        let mut adj_arc = Vec::with_capacity(self.adj_arc.len());
        let mut adj_head = Vec::with_capacity(self.adj_head.len());
        row.push(0u32);
        for v in 0..self.n {
            let (arcs_v, heads_v) = self.out_slots(v);
            for (&a, &h) in arcs_v.iter().zip(heads_v) {
                if !kill[a as usize] {
                    adj_arc.push(a);
                    adj_head.push(h);
                }
            }
            row.push(adj_arc.len() as u32);
        }
        let mut capacity = self.capacity.to_vec();
        let mut inv_capacity = self.inv_capacity.to_vec();
        for (a, &dead) in kill.iter().enumerate() {
            if dead {
                capacity[a] = 0.0;
                inv_capacity[a] = 0.0;
            }
        }
        let id = NEXT_NET_ID.fetch_add(1, Ordering::Relaxed);
        Ok(CsrNet {
            id,
            structure_id: id,
            n: self.n,
            live_arcs: adj_arc.len(),
            row: row.into(),
            adj_arc: adj_arc.into(),
            adj_head: adj_head.into(),
            arc_tail: Arc::clone(&self.arc_tail),
            arc_head: Arc::clone(&self.arc_head),
            capacity: capacity.into(),
            inv_capacity: inv_capacity.into(),
        })
    }

    /// Delta view re-rating specific **edges**: each `(arc, capacity)`
    /// entry sets the capacity of the arc's underlying edge (both
    /// directions — the [`Graph`] model is undirected, so capacity is a
    /// per-edge quantity). The adjacency is untouched, so the view keeps
    /// the base's [`CsrNet::structure_id`] (hop-metric path caches stay
    /// valid) while carrying a fresh [`CsrNet::id`].
    ///
    /// An empty override list returns a plain clone (same `id`).
    ///
    /// # Errors
    /// * [`GraphError::ArcOutOfRange`] for an arc id `>=` `arc_count`.
    /// * [`GraphError::BadCapacity`] for a non-positive or non-finite
    ///   capacity.
    /// * [`GraphError::Unrealizable`] when overriding a disabled arc —
    ///   re-rating a failed link is a scenario-composition bug, not a
    ///   repair mechanism.
    pub fn with_capacity_overrides(
        &self,
        overrides: &[(ArcId, f64)],
    ) -> Result<CsrNet, GraphError> {
        if overrides.is_empty() {
            return Ok(self.clone());
        }
        let m = self.arc_count();
        for &(a, c) in overrides {
            if a >= m {
                return Err(GraphError::ArcOutOfRange { arc: a, arcs: m });
            }
            if !(c.is_finite() && c > 0.0) {
                return Err(GraphError::BadCapacity { capacity: c });
            }
            if !self.is_live(a) {
                return Err(GraphError::Unrealizable(format!(
                    "cannot override capacity of disabled arc {a}"
                )));
            }
        }
        let mut capacity = self.capacity.to_vec();
        let mut inv_capacity = self.inv_capacity.to_vec();
        for &(a, c) in overrides {
            let fwd = a & !1;
            capacity[fwd] = c;
            capacity[fwd | 1] = c;
            inv_capacity[fwd] = 1.0 / c;
            inv_capacity[fwd | 1] = 1.0 / c;
        }
        Ok(CsrNet {
            id: NEXT_NET_ID.fetch_add(1, Ordering::Relaxed),
            structure_id: self.structure_id,
            n: self.n,
            live_arcs: self.live_arcs,
            row: Arc::clone(&self.row),
            adj_arc: Arc::clone(&self.adj_arc),
            adj_head: Arc::clone(&self.adj_head),
            arc_tail: Arc::clone(&self.arc_tail),
            arc_head: Arc::clone(&self.arc_head),
            capacity: capacity.into(),
            inv_capacity: inv_capacity.into(),
        })
    }

    /// Delta view scaling every live arc's capacity by `factor`
    /// (uniform re-rating: the paper's capacity-scaling experiments).
    /// Structure-preserving like [`CsrNet::with_capacity_overrides`];
    /// `factor == 1.0` returns a plain clone (same `id`).
    ///
    /// # Errors
    /// [`GraphError::BadCapacity`] when `factor` is non-positive or
    /// non-finite.
    pub fn with_scaled_capacity(&self, factor: f64) -> Result<CsrNet, GraphError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(GraphError::BadCapacity { capacity: factor });
        }
        if factor == 1.0 {
            return Ok(self.clone());
        }
        let mut capacity = self.capacity.to_vec();
        let mut inv_capacity = self.inv_capacity.to_vec();
        for (c, i) in capacity.iter_mut().zip(inv_capacity.iter_mut()) {
            if *c > 0.0 {
                *c *= factor;
                *i = 1.0 / *c;
            }
        }
        Ok(CsrNet {
            id: NEXT_NET_ID.fetch_add(1, Ordering::Relaxed),
            structure_id: self.structure_id,
            n: self.n,
            live_arcs: self.live_arcs,
            row: Arc::clone(&self.row),
            adj_arc: Arc::clone(&self.adj_arc),
            adj_head: Arc::clone(&self.adj_head),
            arc_tail: Arc::clone(&self.arc_tail),
            arc_head: Arc::clone(&self.arc_head),
            capacity: capacity.into(),
            inv_capacity: inv_capacity.into(),
        })
    }

    /// Rebuild an equivalent [`Graph`] (used by path-enumeration code
    /// such as Yen's algorithm that wants adjacency-list form).
    ///
    /// Disabled edges are omitted, so on a degraded view the rebuilt
    /// graph's **edge ids compact** and no longer align with this net's
    /// arc numbering (node ids are preserved, and per-node neighbor
    /// order matches the view's adjacency order). Code that needs arc
    /// ids must translate node paths through the view itself.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in 0..self.arc_count() / 2 {
            let a = e << 1;
            if self.capacity[a] > 0.0 {
                g.add_edge(self.arc_tail(a), self.arc_head(a), self.capacity[a])
                    .expect("live CsrNet edges originate from a valid Graph");
            }
        }
        g
    }

    /// Single-source Dijkstra over per-arc lengths, writing distances and
    /// parent arcs into `ws`. Allocation-free after `ws` warms up.
    ///
    /// `arc_len` must have one non-negative entry per arc. Results are
    /// identical (bitwise) to [`crate::paths::dijkstra`].
    pub fn dijkstra(&self, src: NodeId, arc_len: &[f64], ws: &mut DijkstraWorkspace) {
        self.dijkstra_targets(src, arc_len, &[], ws);
    }

    /// [`CsrNet::dijkstra`] with early termination: the run stops as soon
    /// as every node in `targets` is settled (an empty list settles the
    /// whole component, i.e. plain Dijkstra).
    ///
    /// Settled nodes — which include every target, every node on a
    /// shortest path to a target, and anything nearer — carry their exact
    /// final distance and parent arc; other nodes may hold tentative
    /// values, so read results only for targets and their ancestors.
    /// This is the form the flow solver's source groups use: a group
    /// routing to 4 sinks in a 1000-switch fabric explores only the ball
    /// that covers those sinks.
    ///
    /// The priority queue is a flat 4-ary heap over integer-packed
    /// `(distance bits, node)` keys — for non-negative finite `f64`
    /// distances the IEEE-754 bit pattern is order-preserving, so
    /// integer comparison sorts exactly like the float, ties broken by
    /// node id. The settle order therefore matches
    /// [`crate::paths::dijkstra`]'s `BinaryHeap` implementation and the
    /// results are bitwise interchangeable.
    pub fn dijkstra_targets(
        &self,
        src: NodeId,
        arc_len: &[f64],
        targets: &[u32],
        ws: &mut DijkstraWorkspace,
    ) {
        debug_assert_eq!(arc_len.len(), self.arc_count());
        ws.begin(self.n);
        ws.dist[src] = 0.0;
        ws.heap_insert(pack(0.0, src as u32));
        let mut outstanding = targets.len();
        while let Some(item) = ws.heap_pop() {
            ws.settles += 1;
            let (d, v) = unpack(item);
            let v = v as usize;
            if !targets.is_empty() && targets.contains(&(v as u32)) {
                outstanding -= 1;
                if outstanding == 0 {
                    return;
                }
            }
            let (arcs, heads) = self.out_slots(v);
            for (&a, &w) in arcs.iter().zip(heads) {
                let (a, w) = (a as usize, w as usize);
                // no settled-check needed: settle order is nondecreasing
                // in distance and lengths are non-negative, so
                // `nd ≥ d ≥ dist[w]` for any settled `w` and the strict
                // comparison rejects it
                let nd = d + arc_len[a];
                if nd < ws.dist[w] {
                    ws.dist[w] = nd;
                    ws.parent_arc[w] = a as u32;
                    ws.heap_upsert(pack(nd, w as u32));
                }
            }
        }
    }

    /// Incrementally repair a **full** shortest-path tree after
    /// increase-only arc-length updates, re-settling just the affected
    /// subtree.
    ///
    /// Preconditions:
    ///
    /// * `ws` holds the result of a completed, non-early-terminated run
    ///   ([`CsrNet::dijkstra`] with an empty target set, or a previous
    ///   repair) from the same `src` on this net;
    /// * every entry of `arc_len` is `>=` its value in that run, and
    ///   `increased` contains (at least) every arc whose length grew —
    ///   duplicates and unchanged arcs are permitted.
    ///
    /// Postconditions:
    ///
    /// * `ws.dist` is **bitwise identical** to a cold
    ///   [`CsrNet::dijkstra`] under `arc_len`: distances are minima over
    ///   identical per-arc float sums, so the repair and the cold run
    ///   agree to the last ulp.
    /// * `ws.parent_arc` is a valid, deterministically tie-broken
    ///   shortest-path tree: every parent arc satisfies
    ///   `dist(tail) + arc_len == dist(node)` exactly, and the choice
    ///   among candidates is the minimum of `(tail distance, tail id,
    ///   arc id)` over tails that re-settled earlier (or were untouched).
    ///   This reproduces the cold run's parents exactly **except**
    ///   inside floating-point *absorption plateaus* — chains where
    ///   `dist + arc_len` rounds back to `dist`, giving several nodes
    ///   the same distance bits — where cold's own choice depends on
    ///   transient heap order that no local rule can reconstruct; there
    ///   the repair still picks a deterministic, cycle-free parent
    ///   achieving the identical distance.
    ///
    /// Nodes whose tree path used no increased arc keep their exact
    /// distance and parent. Only descendants of increased *tree* arcs
    /// are invalidated and re-settled, so the cost is proportional to
    /// the affected subtree's degree sum, not to the component size;
    /// when that subtree grows past ~40% of the nodes (where per-node
    /// re-settling stops being cheaper), the repair bails out to an
    /// internal cold [`CsrNet::dijkstra`], which satisfies the same
    /// postconditions trivially.
    pub fn dijkstra_repair(
        &self,
        src: NodeId,
        arc_len: &[f64],
        increased: &[u32],
        ws: &mut DijkstraWorkspace,
    ) {
        debug_assert_eq!(arc_len.len(), self.arc_count());
        debug_assert_eq!(ws.n, self.n, "workspace sized for a different net");
        debug_assert!(
            ws.heap.is_empty(),
            "repair requires a completed (non-early-terminated) prior run"
        );
        debug_assert_eq!(ws.dist[src], 0.0, "workspace holds a tree from {src}");
        ws.begin_repair(self.n);
        // 1. affected roots: increased arcs the tree actually uses. A
        //    non-tree arc growing longer cannot change any distance.
        for &a in increased {
            let w = self.arc_head[a as usize] as usize;
            if ws.parent_arc[w] == a && ws.mark[w] != ws.mark_gen {
                ws.mark[w] = ws.mark_gen;
                ws.affected.push(w as u32);
            }
        }
        if ws.affected.is_empty() {
            return; // tree untouched: still bitwise equal to a cold run
        }
        // 2. close the affected set under tree children. Re-settling
        //    costs a constant factor more per node than a cold settle
        //    (closure + seed + relax scans), so once the subtree spans
        //    a large fraction of the component a cold rebuild is the
        //    faster way to the identical result — bail out to it.
        let bail_at = self.n * 2 / 5 + 1;
        let mut i = 0;
        while i < ws.affected.len() {
            let v = ws.affected[i] as usize;
            i += 1;
            let (arcs, heads) = self.out_slots(v);
            for (&a, &w) in arcs.iter().zip(heads) {
                let w = w as usize;
                if ws.parent_arc[w] == a && ws.mark[w] != ws.mark_gen {
                    ws.mark[w] = ws.mark_gen;
                    ws.affected.push(w as u32);
                }
            }
            if ws.affected.len() >= bail_at {
                self.dijkstra(src, arc_len, ws);
                return;
            }
        }
        // 3. invalidate the affected set
        for i in 0..ws.affected.len() {
            let w = ws.affected[i] as usize;
            ws.dist[w] = f64::INFINITY;
            ws.parent_arc[w] = NO_ARC;
        }
        // 4. seed each affected node from its best *unaffected* in-arc
        //    (in-arc of `w` = reverse of out-arc, i.e. `a ^ 1`); paths
        //    entering through affected tails are found by relaxation
        for i in 0..ws.affected.len() {
            let w = ws.affected[i];
            let (arcs, heads) = self.out_slots(w as usize);
            let mut best = f64::INFINITY;
            for (&a_out, &v) in arcs.iter().zip(heads) {
                if ws.mark[v as usize] == ws.mark_gen {
                    continue;
                }
                let dv = ws.dist[v as usize];
                if !dv.is_finite() {
                    continue;
                }
                let nd = dv + arc_len[(a_out ^ 1) as usize];
                if nd < best {
                    best = nd;
                }
            }
            if best.is_finite() {
                ws.dist[w as usize] = best;
                ws.heap_insert(pack(best, w));
            }
        }
        // 5. re-settle. A popped node's distance is final; its parent is
        //    the (tail key, arc id)-minimal in-arc achieving exactly that
        //    distance among *eligible* tails — unaffected ones, whose
        //    distances never move, or affected ones that popped earlier
        //    in this repair. Eligibility keeps the scan deterministic
        //    (every value read is final) and the tree cycle-free even
        //    inside absorption plateaus, where an equal-distance
        //    not-yet-popped neighbor could otherwise be chosen mutually.
        while let Some(item) = ws.heap_pop() {
            ws.settles += 1;
            let (d, w) = unpack(item);
            let wu = w as usize;
            ws.mark[wu] = ws.mark_gen | POPPED_BIT;
            let (arcs, heads) = self.out_slots(wu);
            let mut best: Option<(u128, u32)> = None;
            for (&a_out, &v) in arcs.iter().zip(heads) {
                let m = ws.mark[v as usize];
                if m & MARK_MASK == ws.mark_gen && m & POPPED_BIT == 0 {
                    continue; // affected and still pending: not final
                }
                let dv = ws.dist[v as usize];
                if !dv.is_finite() {
                    continue;
                }
                let a_in = a_out ^ 1;
                if dv + arc_len[a_in as usize] == d {
                    let cand = (pack(dv, v), a_in);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            debug_assert!(best.is_some(), "re-settled node {wu} has no parent");
            if let Some((_, a)) = best {
                ws.parent_arc[wu] = a;
            }
            for (&a, &u) in arcs.iter().zip(heads) {
                let u = u as usize;
                let nd = d + arc_len[a as usize];
                if nd < ws.dist[u] {
                    // increase-only updates cannot improve an unaffected
                    // node: its stored distance is already optimal
                    debug_assert_eq!(ws.mark[u] & MARK_MASK, ws.mark_gen);
                    ws.dist[u] = nd;
                    ws.heap_upsert(pack(nd, u as u32));
                }
            }
        }
    }
}

/// Pack a non-negative finite distance and a node id into one ordered
/// `u128` key: distance bits in the high half (IEEE-754 order ==
/// numeric order for non-negative floats), node id in the low half so
/// equal distances order by node id.
#[inline]
pub(crate) fn pack(dist: f64, node: u32) -> u128 {
    debug_assert!(dist >= 0.0);
    ((dist.to_bits() as u128) << 32) | node as u128
}

/// Inverse of [`pack`].
#[inline]
fn unpack(item: u128) -> (f64, u32) {
    (f64::from_bits((item >> 32) as u64), item as u32)
}

/// Sentinel in the heap position index: node not currently queued.
const NOT_QUEUED: u32 = u32::MAX;

/// Top bit of a [`DijkstraWorkspace`] mark stamp: the node has already
/// been re-settled (popped) by the current repair pass.
const POPPED_BIT: u32 = 1 << 31;

/// Mask extracting the generation half of a mark stamp.
const MARK_MASK: u32 = POPPED_BIT - 1;

/// Reusable scratch state for [`CsrNet::dijkstra`].
///
/// Holds the distance, parent-arc, and settled arrays plus an *indexed*
/// flat 4-ary min-heap of integer-packed keys — decrease-key updates a
/// node's queued entry in place, so the heap never holds duplicates and
/// every pop is a settle. Reuse one workspace per thread (or per source
/// group) across thousands of Dijkstra runs: after warm-up no run
/// allocates. Per-run reset cost is four `memset`-speed fills.
#[derive(Debug, Clone, Default)]
pub struct DijkstraWorkspace {
    /// Tentative/final distance per node (`INFINITY` = unreached).
    pub dist: Vec<f64>,
    /// Tree parent arc per node ([`NO_ARC`] = none).
    pub parent_arc: Vec<u32>,
    /// Indexed 4-ary min-heap of `pack`ed (distance, node) keys.
    heap: Vec<u128>,
    /// Heap slot per node ([`NOT_QUEUED`] when absent).
    pos: Vec<u32>,
    /// Active prefix length (the network's node count).
    n: usize,
    /// Cumulative settle (heap pop) counter across runs and repairs.
    settles: u64,
    /// Generation-stamped affected marker for [`CsrNet::dijkstra_repair`]
    /// (`mark[v] == mark_gen` ⇔ `v` affected by the current repair).
    mark: Vec<u32>,
    /// Current repair generation (0 = no repair has run yet).
    mark_gen: u32,
    /// Scratch list of affected nodes for the current repair.
    affected: Vec<u32>,
    /// Cumulative bucketed-SSSP statistics across [`crate::delta::sssp`]
    /// runs through this workspace (zero when only the heap path ran).
    delta_stats: crate::delta::DeltaStats,
}

impl DijkstraWorkspace {
    /// Workspace sized for an `n`-node network (grows on demand).
    pub fn new(n: usize) -> Self {
        let mut ws = DijkstraWorkspace::default();
        ws.begin(n);
        ws
    }

    /// Start a new run: reset the active prefix and clear the heap.
    /// `pub(crate)` so the bucketed SSSP ([`crate::delta`]) can leave the
    /// workspace in exactly the state a completed [`CsrNet::dijkstra`]
    /// would (empty heap, full dist/parent arrays), which is what
    /// [`CsrNet::dijkstra_repair`] requires of its input.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent_arc.resize(n, NO_ARC);
            self.pos.resize(n, NOT_QUEUED);
        }
        self.n = n;
        self.dist[..n].fill(f64::INFINITY);
        self.parent_arc[..n].fill(NO_ARC);
        self.pos[..n].fill(NOT_QUEUED);
        self.heap.clear();
    }

    /// Start a repair pass: bump the affected-marker generation and
    /// clear the affected scratch list. Distances, parents, and the
    /// (empty) heap are carried over from the prior run.
    fn begin_repair(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        // generations live in the low 31 bits; the top bit flags "popped"
        self.mark_gen = (self.mark_gen + 1) & MARK_MASK;
        if self.mark_gen == 0 {
            // generation counter wrapped: stale stamps could alias
            self.mark.fill(0);
            self.mark_gen = 1;
        }
        self.affected.clear();
    }

    /// Cumulative number of settle operations (heap pops) performed by
    /// Dijkstra runs and repairs since the workspace was created — the
    /// "Dijkstra-equivalent settles" unit solver benchmarks report.
    #[inline]
    pub fn settles(&self) -> u64 {
        self.settles
    }

    /// Credit `k` settle operations performed outside the heap loop
    /// (the bucketed SSSP in [`crate::delta`] settles nodes without
    /// popping this workspace's heap but reports in the same unit).
    #[inline]
    pub(crate) fn note_settles(&mut self, k: u64) {
        self.settles += k;
    }

    /// Cumulative bucketed-SSSP statistics this workspace accumulated
    /// (see [`crate::delta::DeltaStats`]); all zeros when only the
    /// scalar heap path ran. Snapshot-and-[`diff`](
    /// crate::delta::DeltaStats::since) to attribute activity to one
    /// solver phase.
    #[inline]
    pub fn delta_stats(&self) -> &crate::delta::DeltaStats {
        &self.delta_stats
    }

    /// Merge one bucketed-SSSP run's statistics into the cumulative
    /// counter (called by [`crate::delta::sssp`]).
    #[inline]
    pub(crate) fn note_delta_stats(&mut self, st: &crate::delta::DeltaStats) {
        self.delta_stats.merge(st);
    }

    /// Distance of `v` from the last run's source (`INFINITY` if
    /// unreached).
    #[inline]
    pub fn distance(&self, v: NodeId) -> f64 {
        self.dist[v]
    }

    /// Parent arc of `v` in the shortest-path tree, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<ArcId> {
        if self.parent_arc[v] != NO_ARC {
            Some(self.parent_arc[v] as ArcId)
        } else {
            None
        }
    }

    /// Move `item` towards the root from slot `i`, maintaining `pos`.
    #[inline]
    fn sift_up(&mut self, mut i: usize, item: u128) {
        while i > 0 {
            let p = (i - 1) >> 2;
            let parent = self.heap[p];
            if parent <= item {
                break;
            }
            self.heap[i] = parent;
            self.pos[parent as u32 as usize] = i as u32;
            i = p;
        }
        self.heap[i] = item;
        self.pos[item as u32 as usize] = i as u32;
    }

    /// Insert a node known to be absent from the heap.
    #[inline]
    fn heap_insert(&mut self, item: u128) {
        let i = self.heap.len();
        self.heap.push(item);
        self.sift_up(i, item);
    }

    /// Insert `item`'s node, or decrease its key in place if queued.
    #[inline]
    fn heap_upsert(&mut self, item: u128) {
        match self.pos[item as u32 as usize] {
            NOT_QUEUED => self.heap_insert(item),
            slot => self.sift_up(slot as usize, item),
        }
    }

    /// Pop the minimum key from the indexed 4-ary min-heap.
    #[inline]
    fn heap_pop(&mut self) -> Option<u128> {
        let top = *self.heap.first()?;
        self.pos[top as u32 as usize] = NOT_QUEUED;
        let last = self.heap.pop().expect("non-empty");
        let len = self.heap.len();
        if len > 0 {
            // sift the former tail down from the root
            let mut i = 0;
            loop {
                let first_child = (i << 2) + 1;
                if first_child >= len {
                    break;
                }
                let mut min_c = first_child;
                let end = (first_child + 4).min(len);
                for c in first_child + 1..end {
                    if self.heap[c] < self.heap[min_c] {
                        min_c = c;
                    }
                }
                let child = self.heap[min_c];
                if child >= last {
                    break;
                }
                self.heap[i] = child;
                self.pos[child as u32 as usize] = i as u32;
                i = min_c;
            }
            self.heap[i] = last;
            self.pos[last as u32 as usize] = i as u32;
        }
        Some(top)
    }

    /// Walk parent arcs from `dst` to the source, invoking `visit` for
    /// each arc (dst-to-source order). Returns `false` if `dst` was
    /// unreached.
    #[inline]
    pub fn walk_path(&self, net: &CsrNet, dst: NodeId, mut visit: impl FnMut(ArcId)) -> bool {
        if !self.distance(dst).is_finite() {
            return false;
        }
        let mut v = dst;
        while let Some(a) = self.parent(v) {
            visit(a);
            v = net.arc_tail(a);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::dijkstra;

    fn ring_with_chords(n: usize, chords: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        for &(u, v) in chords {
            g.add_edge(u, v, 2.5).unwrap();
        }
        g
    }

    #[test]
    fn csr_mirrors_graph_topology() {
        let g = ring_with_chords(8, &[(0, 4), (1, 5)]);
        let net = CsrNet::from_graph(&g);
        assert_eq!(net.node_count(), g.node_count());
        assert_eq!(net.arc_count(), g.arc_count());
        assert_eq!(net.total_capacity(), g.total_capacity());
        for a in 0..g.arc_count() {
            assert_eq!(net.arc_tail(a), g.arc_tail(a));
            assert_eq!(net.arc_head(a), g.arc_head(a));
            assert_eq!(net.capacity(a), g.arc_capacity(a));
            assert!((net.inv_capacity(a) - 1.0 / g.arc_capacity(a)).abs() < 1e-15);
        }
        for v in 0..g.node_count() {
            let (arcs, heads) = net.out_slots(v);
            let expect: Vec<(usize, usize)> = g.out_arcs(v).collect();
            assert_eq!(arcs.len(), expect.len());
            assert_eq!(net.out_degree(v), expect.len());
            for (i, &(a, w)) in expect.iter().enumerate() {
                assert_eq!(arcs[i] as usize, a);
                assert_eq!(heads[i] as usize, w);
            }
        }
    }

    #[test]
    fn round_trip_to_graph() {
        let g = ring_with_chords(6, &[(2, 5)]);
        let back = CsrNet::from_graph(&g).to_graph();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for e in 0..g.edge_count() {
            assert_eq!(back.edge(e), g.edge(e));
        }
    }

    #[test]
    fn dijkstra_matches_legacy_bitwise() {
        let g = ring_with_chords(12, &[(0, 6), (3, 9), (1, 7)]);
        let net = CsrNet::from_graph(&g);
        // irregular lengths exercise tie-breaking and float order
        let lens: Vec<f64> = (0..g.arc_count())
            .map(|a| 0.25 + ((a * 37) % 11) as f64 * 0.125)
            .collect();
        let mut ws = DijkstraWorkspace::new(net.node_count());
        for src in 0..g.node_count() {
            let legacy = dijkstra(&g, src, &lens);
            net.dijkstra(src, &lens, &mut ws);
            for v in 0..g.node_count() {
                assert_eq!(
                    legacy.dist[v].to_bits(),
                    ws.distance(v).to_bits(),
                    "src {src} node {v}"
                );
                assert_eq!(legacy.parent_arc[v], ws.parent(v), "src {src} node {v}");
            }
        }
    }

    #[test]
    fn workspace_reuse_handles_disconnection() {
        let mut g = Graph::new(5);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let net = CsrNet::from_graph(&g);
        let lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(5);
        net.dijkstra(0, &lens, &mut ws);
        assert!(ws.distance(1).is_finite());
        assert!(!ws.distance(2).is_finite());
        assert!(!ws.distance(4).is_finite());
        // second run from the other component: stale entries must not leak
        net.dijkstra(2, &lens, &mut ws);
        assert_eq!(ws.distance(3), 1.0);
        assert!(!ws.distance(0).is_finite());
        assert!(ws.parent(1).is_none());
    }

    /// Compare `ws` (repaired) against a cold full run for every node.
    fn assert_matches_cold(net: &CsrNet, src: usize, lens: &[f64], ws: &DijkstraWorkspace) {
        let mut cold = DijkstraWorkspace::new(net.node_count());
        net.dijkstra(src, lens, &mut cold);
        for v in 0..net.node_count() {
            assert_eq!(
                cold.distance(v).to_bits(),
                ws.distance(v).to_bits(),
                "src {src} node {v}: dist"
            );
            assert_eq!(cold.parent(v), ws.parent(v), "src {src} node {v}: parent");
        }
    }

    #[test]
    fn repair_matches_cold_on_chain_of_increases() {
        let g = ring_with_chords(10, &[(0, 5), (2, 7), (3, 8)]);
        let net = CsrNet::from_graph(&g);
        let mut lens: Vec<f64> = (0..net.arc_count())
            .map(|a| 0.5 + ((a * 13) % 7) as f64 * 0.25)
            .collect();
        for src in 0..net.node_count() {
            let mut ws = DijkstraWorkspace::new(net.node_count());
            net.dijkstra(src, &lens, &mut ws);
            // grow a rotating window of arcs several times; repair after
            // each batch and demand bitwise equality with a cold run
            for round in 0..6 {
                let increased: Vec<u32> = (0..net.arc_count())
                    .filter(|a| (a + round) % 3 == 0)
                    .map(|a| a as u32)
                    .collect();
                for &a in &increased {
                    lens[a as usize] *= 1.0 + 0.3 * ((a % 5) as f64 + 1.0);
                }
                net.dijkstra_repair(src, &lens, &increased, &mut ws);
                assert_matches_cold(&net, src, &lens, &ws);
            }
            // restore lengths for the next source
            for (a, len) in lens.iter_mut().enumerate() {
                *len = 0.5 + ((a * 13) % 7) as f64 * 0.25;
            }
        }
    }

    #[test]
    fn repair_of_nontree_arc_is_free() {
        let g = ring_with_chords(8, &[(1, 5)]);
        let net = CsrNet::from_graph(&g);
        let mut lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(net.node_count());
        net.dijkstra(0, &lens, &mut ws);
        let before = ws.settles();
        // find an arc the tree does not use and grow only that one
        let unused = (0..net.arc_count() as u32)
            .find(|&a| ws.parent_arc[net.arc_head(a as usize)] != a)
            .unwrap();
        lens[unused as usize] = 9.0;
        net.dijkstra_repair(0, &lens, &[unused], &mut ws);
        assert_eq!(
            ws.settles(),
            before,
            "non-tree increase must settle nothing"
        );
        assert_matches_cold(&net, 0, &lens, &ws);
    }

    /// Parallel edges and exact distance ties exercise the parent
    /// tie-breaking contract (settle key of the tail, then arc id).
    #[test]
    fn repair_matches_cold_with_parallel_edges_and_ties() {
        let mut g = Graph::new(6);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(0, 2).unwrap();
        g.add_unit_edge(1, 3).unwrap();
        g.add_unit_edge(2, 3).unwrap(); // tie at node 3 via 1 and 2
        g.add_unit_edge(3, 4).unwrap();
        g.add_unit_edge(3, 4).unwrap(); // parallel pair to 4
        g.add_unit_edge(4, 5).unwrap();
        g.add_unit_edge(2, 5).unwrap();
        let net = CsrNet::from_graph(&g);
        let mut lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(net.node_count());
        net.dijkstra(0, &lens, &mut ws);
        // grow the currently-used arc into 3 and one of the parallel
        // arcs, keeping unit ties alive elsewhere
        let tree_arc_3 = ws.parent(3).unwrap() as u32;
        lens[tree_arc_3 as usize] = 1.5;
        let tree_arc_4 = ws.parent(4).unwrap() as u32;
        lens[tree_arc_4 as usize] = 1.25;
        net.dijkstra_repair(0, &lens, &[tree_arc_3, tree_arc_4], &mut ws);
        assert_matches_cold(&net, 0, &lens, &ws);
        // and again after a second wave that reverses the preference
        let arcs: Vec<u32> = (0..net.arc_count() as u32).collect();
        for l in lens.iter_mut() {
            *l *= 2.0;
        }
        net.dijkstra_repair(0, &lens, &arcs, &mut ws);
        assert_matches_cold(&net, 0, &lens, &ws);
    }

    #[test]
    fn repair_random_sequences_match_cold() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(5..24);
            let mut g = Graph::new(n);
            for v in 0..n {
                g.add_edge(v, (v + 1) % n, rng.random_range(0.5..4.0))
                    .unwrap();
            }
            for _ in 0..rng.random_range(0..2 * n) {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v {
                    g.add_edge(u, v, rng.random_range(0.5..4.0)).unwrap();
                }
            }
            let net = CsrNet::from_graph(&g);
            let mut lens: Vec<f64> = (0..net.arc_count())
                .map(|_| rng.random_range(0.01..5.0))
                .collect();
            let src = rng.random_range(0..n);
            let mut ws = DijkstraWorkspace::new(n);
            net.dijkstra(src, &lens, &mut ws);
            for _ in 0..8 {
                let mut increased = Vec::new();
                for (a, len) in lens.iter_mut().enumerate() {
                    if rng.random_range(0.0..1.0) < 0.3 {
                        *len *= 1.0 + rng.random_range(0.0..2.0);
                        increased.push(a as u32);
                    }
                }
                net.dijkstra_repair(src, &lens, &increased, &mut ws);
                assert_matches_cold(&net, src, &lens, &ws);
            }
        }
    }

    /// FPTAS-style updates: unit lengths and identical multipliers keep
    /// many exact distance ties alive across repair rounds.
    #[test]
    fn repair_with_tied_multiplicative_updates() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 7;
            let mut g = Graph::new(n);
            for v in 0..n {
                g.add_unit_edge(v, (v + 1) % n).unwrap();
            }
            for _ in 0..4 {
                let u = rng.random_range(0..n);
                let v = rng.random_range(0..n);
                if u != v {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
            let net = CsrNet::from_graph(&g);
            let mut lens = vec![1.0f64; net.arc_count()];
            let src = rng.random_range(0..n);
            let mut ws = DijkstraWorkspace::new(n);
            net.dijkstra(src, &lens, &mut ws);
            for _ in 0..20 {
                let mut increased = Vec::new();
                for (a, len) in lens.iter_mut().enumerate() {
                    if rng.random_range(0.0..1.0) < 0.2 {
                        *len *= 1.05;
                        increased.push(a as u32);
                    }
                }
                net.dijkstra_repair(src, &lens, &increased, &mut ws);
                assert_matches_cold(&net, src, &lens, &ws);
            }
        }
    }

    #[test]
    fn settles_counter_accumulates() {
        let g = ring_with_chords(6, &[]);
        let net = CsrNet::from_graph(&g);
        let lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(6);
        assert_eq!(ws.settles(), 0);
        net.dijkstra(0, &lens, &mut ws);
        assert_eq!(ws.settles(), 6, "full run settles every node");
        net.dijkstra(0, &lens, &mut ws);
        assert_eq!(ws.settles(), 12, "counter is cumulative");
    }

    #[test]
    fn disabled_arc_view_fails_whole_edges() {
        let g = ring_with_chords(8, &[(0, 4)]);
        let net = CsrNet::from_graph(&g);
        let chord_fwd = 8 << 1; // edge 8 is the chord
        let view = net.with_disabled_arcs(&[chord_fwd]).unwrap();
        // identity: fresh id AND fresh structure id
        assert_ne!(view.id(), net.id());
        assert_ne!(view.structure_id(), net.structure_id());
        // arc numbering stable; both directions dead; capacities zeroed
        assert_eq!(view.arc_count(), net.arc_count());
        assert!(!view.is_live(chord_fwd) && !view.is_live(chord_fwd | 1));
        assert_eq!(view.capacity(chord_fwd), 0.0);
        assert_eq!(view.inv_capacity(chord_fwd | 1), 0.0);
        assert_eq!(view.live_arc_count(), net.live_arc_count() - 2);
        assert_eq!(view.total_capacity(), net.total_capacity() - 5.0);
        // adjacency no longer mentions the chord, base untouched
        assert_eq!(view.out_degree(0), net.out_degree(0) - 1);
        assert_eq!(net.out_degree(0), 3);
        for v in 0..8 {
            let (arcs, heads) = view.out_slots(v);
            for (&a, &h) in arcs.iter().zip(heads) {
                assert!(view.is_live(a as usize));
                assert_eq!(view.arc_head(a as usize), h as usize);
            }
        }
        // Dijkstra routes around the failed chord
        let lens: Vec<f64> = view.inv_capacities().to_vec();
        let mut ws = DijkstraWorkspace::new(8);
        view.dijkstra(0, &lens, &mut ws);
        assert!(ws.walk_path(&view, 4, |a| assert_ne!(a & !1, chord_fwd)));
        // idempotent re-disable is a plain clone (id preserved)
        let again = view.with_disabled_arcs(&[chord_fwd | 1]).unwrap();
        assert_eq!(again.id(), view.id());
        // out-of-range arc is a typed error
        assert!(matches!(
            net.with_disabled_arcs(&[net.arc_count()]),
            Err(GraphError::ArcOutOfRange { .. })
        ));
    }

    #[test]
    fn capacity_views_preserve_structure_id() {
        let g = ring_with_chords(6, &[(1, 4)]);
        let net = CsrNet::from_graph(&g);
        let scaled = net.with_scaled_capacity(2.5).unwrap();
        assert_ne!(scaled.id(), net.id());
        assert_eq!(scaled.structure_id(), net.structure_id());
        for a in 0..net.arc_count() {
            assert_eq!(
                scaled.capacity(a).to_bits(),
                (net.capacity(a) * 2.5).to_bits()
            );
            assert_eq!(
                scaled.inv_capacity(a).to_bits(),
                (1.0 / (net.capacity(a) * 2.5)).to_bits()
            );
        }
        // identity scale is a plain clone
        assert_eq!(net.with_scaled_capacity(1.0).unwrap().id(), net.id());
        let over = net.with_capacity_overrides(&[(0, 7.0), (5, 3.0)]).unwrap();
        assert_eq!(over.structure_id(), net.structure_id());
        // edge-level semantics: both directions re-rated
        assert_eq!(over.capacity(0), 7.0);
        assert_eq!(over.capacity(1), 7.0);
        assert_eq!(over.capacity(4), 3.0);
        assert_eq!(over.capacity(5), 3.0);
        assert_eq!(over.capacity(2), net.capacity(2));
        // adjacency shared and identical
        for v in 0..net.node_count() {
            assert_eq!(over.out_slots(v), net.out_slots(v));
        }
        // error paths: typed and precise
        assert!(matches!(
            net.with_scaled_capacity(0.0),
            Err(GraphError::BadCapacity { capacity }) if capacity == 0.0
        ));
        assert!(matches!(
            net.with_scaled_capacity(f64::NAN),
            Err(GraphError::BadCapacity { .. })
        ));
        assert!(matches!(
            net.with_capacity_overrides(&[(99, 1.0)]),
            Err(GraphError::ArcOutOfRange { arc: 99, .. })
        ));
        assert!(matches!(
            net.with_capacity_overrides(&[(0, -2.0)]),
            Err(GraphError::BadCapacity { .. })
        ));
        let failed = net.with_disabled_arcs(&[0]).unwrap();
        assert!(matches!(
            failed.with_capacity_overrides(&[(0, 2.0)]),
            Err(GraphError::Unrealizable(_))
        ));
        // disabled arcs stay at zero through a uniform scale
        let failed_scaled = failed.with_scaled_capacity(3.0).unwrap();
        assert_eq!(failed_scaled.capacity(0), 0.0);
        assert_eq!(failed_scaled.inv_capacity(1), 0.0);
        assert_eq!(failed_scaled.structure_id(), failed.structure_id());
    }

    #[test]
    fn degraded_to_graph_skips_failed_edges() {
        let g = ring_with_chords(6, &[(0, 3)]);
        let net = CsrNet::from_graph(&g);
        let view = net.with_disabled_arcs(&[2 << 1]).unwrap(); // kill edge 2
        let back = view.to_graph();
        assert_eq!(back.node_count(), 6);
        assert_eq!(back.edge_count(), g.edge_count() - 1);
        assert!(!back.has_edge(2, 3));
        assert!(back.has_edge(0, 3));
        // neighbor order matches the view's (filtered) adjacency order
        for v in 0..6 {
            let (_, heads) = view.out_slots(v);
            let rebuilt: Vec<usize> = back.neighbors(v).collect();
            assert_eq!(
                heads.iter().map(|&h| h as usize).collect::<Vec<_>>(),
                rebuilt,
                "node {v}"
            );
        }
    }

    /// A Dijkstra run on a view equals a run on a net rebuilt from the
    /// degraded graph (same traversal order ⇒ same bits).
    #[test]
    fn view_dijkstra_matches_rebuilt_net() {
        let g = ring_with_chords(10, &[(0, 5), (2, 7)]);
        let net = CsrNet::from_graph(&g);
        let view = net.with_disabled_arcs(&[0, 11 << 1]).unwrap();
        let rebuilt = CsrNet::from_graph(&view.to_graph());
        let lens_view: Vec<f64> = view.inv_capacities().to_vec();
        let lens_rebuilt: Vec<f64> = rebuilt.inv_capacities().to_vec();
        let mut ws_v = DijkstraWorkspace::new(10);
        let mut ws_r = DijkstraWorkspace::new(10);
        for src in 0..10 {
            view.dijkstra(src, &lens_view, &mut ws_v);
            rebuilt.dijkstra(src, &lens_rebuilt, &mut ws_r);
            for v in 0..10 {
                assert_eq!(
                    ws_v.distance(v).to_bits(),
                    ws_r.distance(v).to_bits(),
                    "src {src} node {v}"
                );
            }
        }
        assert_eq!(ws_v.settles(), ws_r.settles());
    }

    #[test]
    fn walk_path_visits_arcs_in_reverse() {
        let g = ring_with_chords(6, &[]);
        let net = CsrNet::from_graph(&g);
        let lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(6);
        net.dijkstra(0, &lens, &mut ws);
        let mut arcs = Vec::new();
        assert!(ws.walk_path(&net, 2, |a| arcs.push(a)));
        assert_eq!(arcs.len(), 2);
        assert_eq!(net.arc_head(arcs[0]), 2);
        assert_eq!(net.arc_tail(arcs[1]), 0);
        let mut none = 0;
        let mut g2 = Graph::new(3);
        g2.add_unit_edge(0, 1).unwrap();
        let net2 = CsrNet::from_graph(&g2);
        let mut ws2 = DijkstraWorkspace::new(3);
        net2.dijkstra(0, &[1.0; 2], &mut ws2);
        assert!(!ws2.walk_path(&net2, 2, |_| none += 1));
        assert_eq!(none, 0);
    }

    /// Bitwise equality of everything downstream code can observe:
    /// capacities, inverse capacities, adjacency arrays, and live-arc
    /// bookkeeping. Identity tokens are deliberately excluded — every
    /// materially-new view mints a fresh `id`.
    fn assert_views_bitwise_equal(a: &CsrNet, b: &CsrNet, what: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{what}: node count");
        assert_eq!(a.arc_count(), b.arc_count(), "{what}: arc count");
        assert_eq!(a.live_arc_count(), b.live_arc_count(), "{what}: live arcs");
        for arc in 0..a.arc_count() {
            assert_eq!(
                a.capacity(arc).to_bits(),
                b.capacity(arc).to_bits(),
                "{what}: capacity of arc {arc}"
            );
            assert_eq!(
                a.inv_capacity(arc).to_bits(),
                b.inv_capacity(arc).to_bits(),
                "{what}: inv capacity of arc {arc}"
            );
        }
        for v in 0..a.node_count() {
            assert_eq!(a.out_slots(v), b.out_slots(v), "{what}: adjacency of {v}");
        }
    }

    #[test]
    fn view_composition_stacked_disables_equal_union_disable() {
        let g = ring_with_chords(10, &[(0, 5), (2, 7), (4, 9)]);
        let base = CsrNet::from_graph(&g);
        let d1 = [0usize, 4]; // edges 0 and 2 (fwd arcs)
        let d2 = [9usize, 20]; // edge 4 (reverse arc) and edge 10
        let stacked = base
            .with_disabled_arcs(&d1)
            .unwrap()
            .with_disabled_arcs(&d2)
            .unwrap();
        let union: Vec<usize> = d1.iter().chain(&d2).copied().collect();
        let single = base.with_disabled_arcs(&union).unwrap();
        assert_views_bitwise_equal(&stacked, &single, "disable∘disable");
        // re-disabling an arc already dead in the lower layer is
        // idempotent: the upper layer treats it as a no-op entry
        let redundant = stacked.with_disabled_arcs(&d1).unwrap();
        assert_views_bitwise_equal(&redundant, &single, "idempotent re-disable");
        assert_eq!(redundant.id(), stacked.id(), "no-op layer is a plain clone");
    }

    #[test]
    fn view_composition_override_then_disable_equals_either_order() {
        let g = ring_with_chords(10, &[(0, 5), (2, 7)]);
        let base = CsrNet::from_graph(&g);
        // overrides and disables touch disjoint edges
        let overrides = [(2usize, 4.0), (21usize, 0.25)]; // edges 1 and 10
        let disabled = [6usize, 16]; // edges 3 and 8
        let override_first = base
            .with_capacity_overrides(&overrides)
            .unwrap()
            .with_disabled_arcs(&disabled)
            .unwrap();
        let disable_first = base
            .with_disabled_arcs(&disabled)
            .unwrap()
            .with_capacity_overrides(&overrides)
            .unwrap();
        assert_views_bitwise_equal(
            &override_first,
            &disable_first,
            "override/disable commute on disjoint edges",
        );
        // the stacked view keeps the overridden rates on surviving edges
        assert_eq!(override_first.capacity(2), 4.0);
        assert_eq!(override_first.capacity(3), 4.0);
        assert_eq!(override_first.capacity(6), 0.0);
    }

    #[test]
    fn view_composition_stacked_overrides_last_write_wins() {
        let g = ring_with_chords(8, &[(1, 5)]);
        let base = CsrNet::from_graph(&g);
        let stacked = base
            .with_capacity_overrides(&[(0, 2.0), (4, 8.0)])
            .unwrap()
            .with_capacity_overrides(&[(4, 3.0)])
            .unwrap();
        let merged = base.with_capacity_overrides(&[(0, 2.0), (4, 3.0)]).unwrap();
        assert_views_bitwise_equal(&stacked, &merged, "override∘override");
        // capacity-only layers preserve the base structure_id at any
        // stacking depth...
        assert_eq!(stacked.structure_id(), base.structure_id());
        // ...while each materially-new layer mints a fresh id
        assert_ne!(stacked.id(), base.id());
    }

    #[test]
    fn view_composition_structure_id_tracks_net_adjacency_of_stack() {
        let g = ring_with_chords(8, &[(0, 4)]);
        let base = CsrNet::from_graph(&g);
        let capped = base.with_capacity_overrides(&[(0, 5.0)]).unwrap();
        assert_eq!(capped.structure_id(), base.structure_id());
        let degraded = capped.with_disabled_arcs(&[8]).unwrap();
        assert_ne!(
            degraded.structure_id(),
            base.structure_id(),
            "a disabling layer refreshes the stack's structure_id"
        );
        let rerated = degraded.with_scaled_capacity(2.0).unwrap();
        assert_eq!(
            rerated.structure_id(),
            degraded.structure_id(),
            "a capacity-only layer on a degraded view keeps its structure_id"
        );
        // dead arcs stay dead through capacity-only layers
        assert_eq!(rerated.capacity(8), 0.0);
        assert_eq!(rerated.capacity(0).to_bits(), 10.0f64.to_bits());
    }

    #[test]
    fn view_composition_rejects_override_of_disabled_arc_in_any_order() {
        let g = ring_with_chords(8, &[(2, 6)]);
        let base = CsrNet::from_graph(&g);
        let dead = base.with_disabled_arcs(&[4]).unwrap();
        let err = dead.with_capacity_overrides(&[(4, 2.0)]).unwrap_err();
        assert!(matches!(err, GraphError::Unrealizable(_)));
        // the reverse arc of the same edge is equally dead
        let err = dead.with_capacity_overrides(&[(5, 2.0)]).unwrap_err();
        assert!(matches!(err, GraphError::Unrealizable(_)));
    }

    #[test]
    fn view_composition_scale_on_disabled_view_equals_disable_on_scaled() {
        let g = ring_with_chords(9, &[(0, 3), (1, 6)]);
        let base = CsrNet::from_graph(&g);
        let a = base
            .with_disabled_arcs(&[2, 10])
            .unwrap()
            .with_scaled_capacity(1.5)
            .unwrap();
        let b = base
            .with_scaled_capacity(1.5)
            .unwrap()
            .with_disabled_arcs(&[2, 10])
            .unwrap();
        assert_views_bitwise_equal(&a, &b, "scale/disable commute");
    }
}
