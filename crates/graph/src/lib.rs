//! # dctopo-graph
//!
//! Capacitated multigraph substrate for the `dctopo` workspace.
//!
//! This crate provides the graph data structure and the graph algorithms
//! that every other subsystem builds on:
//!
//! * [`Graph`] — an undirected capacitated multigraph with a directed *arc*
//!   view (each undirected edge contributes two arcs of equal capacity, one
//!   per direction), which is the representation the max-concurrent-flow
//!   solver consumes.
//! * a compact CSR arc view ([`csr::CsrNet`]) with reusable Dijkstra
//!   scratch buffers ([`csr::DijkstraWorkspace`]) — the zero-allocation
//!   representation every flow-solver backend consumes.
//! * shortest paths: unweighted BFS, weighted Dijkstra over arbitrary
//!   per-arc lengths ([`paths`]), Yen's k-shortest simple paths and ECMP
//!   shortest-path enumeration ([`kshortest`]).
//! * average shortest path length (ASPL) and diameter ([`paths::PathStats`]).
//! * connectivity queries ([`components`]).
//! * degree-preserving double-edge swaps ([`swaps`]), the repair move used
//!   by the Jellyfish-style random regular graph construction.
//! * spectral diagnostics ([`spectral`]): second adjacency eigenvalue and
//!   sampled edge expansion, verifying the expander properties the
//!   paper's §6.2 analysis assumes.
//!
//! Nodes are dense indices `0..n` (`NodeId = usize`). Node *roles* (switch
//! vs. server, large vs. small switch) are deliberately not stored here;
//! they belong to `dctopo-topology`, which layers meaning on top of the
//! bare graph.

#![warn(missing_docs)]

pub mod components;
pub mod csr;
pub mod delta;
pub mod error;
pub mod graph;
pub mod io;
pub mod kshortest;
pub mod msbfs;
pub mod paths;
pub mod spectral;
pub mod swaps;

pub use csr::{CsrNet, DijkstraWorkspace};
pub use delta::DeltaStats;
pub use error::GraphError;
pub use graph::{ArcId, EdgeId, Graph, NodeId};
pub use msbfs::{ms_bfs, ms_bfs_csr, MsBfsWorkspace};
pub use paths::{BfsWorkspace, PathStats};
