//! Degree-preserving double-edge swaps.
//!
//! A double-edge swap replaces edges `(a,b)` and `(c,d)` with `(a,c)` and
//! `(b,d)` (or `(a,d)` and `(b,c)`). It preserves every node's degree, so
//! it is the basic move both for *repairing* a stuck random-graph
//! construction (Jellyfish §2 of the paper's reference \[27\]) and for
//! *mixing* a graph towards the uniform distribution over graphs with the
//! same degree sequence.

use rand::{Rng, RngExt};

use crate::{Graph, GraphError};

/// Attempt one random degree-preserving double-edge swap that keeps the
/// graph simple (no self-loops or parallel edges introduced).
///
/// Returns `true` if a swap was applied. A `false` return means the
/// sampled pair could not be legally swapped — callers typically loop.
pub fn try_random_swap<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) -> bool {
    let m = g.edge_count();
    if m < 2 {
        return false;
    }
    let e1 = rng.random_range(0..m);
    let e2 = rng.random_range(0..m);
    if e1 == e2 {
        return false;
    }
    let (a, b) = {
        let e = g.edge(e1);
        (e.u, e.v)
    };
    let (c, d) = {
        let e = g.edge(e2);
        (e.u, e.v)
    };
    let cap1 = g.edge(e1).capacity;
    let cap2 = g.edge(e2).capacity;
    // orientation choice: (a,c)+(b,d) or (a,d)+(b,c)
    let (x1, y1, x2, y2) = if rng.random_range(0..2) == 0 {
        (a, c, b, d)
    } else {
        (a, d, b, c)
    };
    if x1 == y1 || x2 == y2 || g.has_edge(x1, y1) || g.has_edge(x2, y2) {
        return false;
    }
    // remove higher id first so the lower id stays valid
    let (hi, lo) = if e1 > e2 { (e1, e2) } else { (e2, e1) };
    let (cap_hi, cap_lo) = if e1 > e2 { (cap1, cap2) } else { (cap2, cap1) };
    g.remove_edge(hi);
    g.remove_edge(lo);
    g.add_edge(x1, y1, cap_lo)
        .expect("swap endpoints validated");
    g.add_edge(x2, y2, cap_hi)
        .expect("swap endpoints validated");
    true
}

/// Apply `count` successful random swaps (each preserves the degree
/// sequence), giving up after `max_attempts` failed samples in a row.
pub fn shuffle_edges<R: Rng + ?Sized>(
    g: &mut Graph,
    count: usize,
    rng: &mut R,
) -> Result<usize, GraphError> {
    let mut done = 0;
    let mut stuck = 0usize;
    let max_attempts = 100 + 50 * g.edge_count();
    while done < count {
        if try_random_swap(g, rng) {
            done += 1;
            stuck = 0;
        } else {
            stuck += 1;
            if stuck > max_attempts {
                return Err(GraphError::Unrealizable(format!(
                    "edge shuffle stuck after {done} of {count} swaps"
                )));
            }
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        g
    }

    #[test]
    fn swap_preserves_degrees_and_simplicity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = ring(20);
        let before = g.degrees();
        let mut applied = 0;
        for _ in 0..500 {
            if try_random_swap(&mut g, &mut rng) {
                applied += 1;
            }
        }
        assert!(
            applied > 10,
            "expected some swaps to succeed, got {applied}"
        );
        assert_eq!(g.degrees(), before);
        // graph stays simple
        for v in 0..g.node_count() {
            let mut nbrs: Vec<_> = g.neighbors(v).collect();
            let len = nbrs.len();
            nbrs.sort_unstable();
            nbrs.dedup();
            assert_eq!(nbrs.len(), len, "parallel edge introduced at {v}");
            assert!(!nbrs.contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn shuffle_edges_counts_successes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = ring(30);
        let n = shuffle_edges(&mut g, 50, &mut rng).unwrap();
        assert_eq!(n, 50);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn swap_impossible_on_tiny_graph() {
        // single edge: nothing to swap with
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Graph::new(2);
        g.add_unit_edge(0, 1).unwrap();
        assert!(!try_random_swap(&mut g, &mut rng));
        assert!(shuffle_edges(&mut g, 1, &mut rng).is_err());
    }

    #[test]
    fn swap_preserves_capacity_multiset() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = Graph::new(6);
        for &(u, v, c) in &[
            (0, 1, 1.0),
            (2, 3, 10.0),
            (4, 5, 1.0),
            (1, 2, 10.0),
            (3, 4, 1.0),
            (5, 0, 10.0),
        ] {
            g.add_edge(u, v, c).unwrap();
        }
        let mut caps_before: Vec<_> = g.edges().iter().map(|e| e.capacity as i64).collect();
        caps_before.sort_unstable();
        for _ in 0..200 {
            let _ = try_random_swap(&mut g, &mut rng);
        }
        let mut caps_after: Vec<_> = g.edges().iter().map(|e| e.capacity as i64).collect();
        caps_after.sort_unstable();
        assert_eq!(caps_before, caps_after);
    }
}
