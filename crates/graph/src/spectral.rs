//! Spectral diagnostics: the second adjacency eigenvalue and expansion
//! estimates.
//!
//! The paper's §6.2 lower-bound analysis rests on random regular graphs
//! being near-optimal expanders (Lemmas 1–2 invoke the expander mixing
//! lemma). This module provides the tooling to *check* that property on
//! concrete instances: [`second_eigenvalue`] estimates `λ₂(A)` by power
//! iteration with deflation against the known top eigenvector (the
//! all-ones vector, for regular graphs), and [`edge_expansion_sample`]
//! lower-bounds conductance empirically over sampled cuts.

use rand::{Rng, RngExt};

use crate::{Graph, GraphError};

/// Estimate the second-largest adjacency eigenvalue magnitude `|λ₂|` of a
/// **regular** graph by power iteration on the complement of the top
/// eigenspace.
///
/// For an r-regular graph, `λ₁ = r` with eigenvector **1**; a Ramanujan
/// graph has `|λ₂| ≤ 2√(r−1)`, and uniformly random regular graphs are
/// near-Ramanujan with high probability — the property the paper's
/// throughput lemmas need.
///
/// # Errors
/// [`GraphError::Unrealizable`] if the graph is not regular.
pub fn second_eigenvalue(g: &Graph, iterations: usize) -> Result<f64, GraphError> {
    let n = g.node_count();
    let r = g.regular_degree().ok_or_else(|| {
        GraphError::Unrealizable("second_eigenvalue needs a regular graph".into())
    })?;
    if n < 2 {
        return Ok(0.0);
    }
    let _ = r;
    // deterministic start vector orthogonal to 1: alternating signs with
    // a slight ramp so it is never an exact eigenvector by accident
    let mut v: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 } * (1.0 + i as f64 / n as f64))
        .collect();
    orthogonalize(&mut v);
    normalize(&mut v);
    let mut eig = 0.0;
    let mut w = vec![0.0f64; n];
    for _ in 0..iterations.max(8) {
        // w = A v
        for x in w.iter_mut() {
            *x = 0.0;
        }
        for e in g.edges() {
            w[e.u] += v[e.v];
            w[e.v] += v[e.u];
        }
        orthogonalize(&mut w);
        let norm = dot(&w, &w).sqrt();
        if norm < 1e-300 {
            return Ok(0.0);
        }
        eig = norm; // ‖A v‖ for unit v orthogonal to 1 → |λ₂| at the fixpoint
        for (a, b) in v.iter_mut().zip(&w) {
            *a = b / norm;
        }
    }
    Ok(eig)
}

/// The Ramanujan threshold `2√(r−1)` for degree `r`.
pub fn ramanujan_bound(r: usize) -> f64 {
    2.0 * ((r.max(1) - 1) as f64).sqrt()
}

/// Empirical edge expansion: sample `samples` random balanced-ish cuts
/// and return the minimum of `|∂S| / min(|S|, |S̄|)` observed. An upper
/// bound on the true expansion (true minimum is over all cuts), useful
/// as a cheap health check that no sampled cut is catastrophically thin.
pub fn edge_expansion_sample<R: Rng + ?Sized>(g: &Graph, samples: usize, rng: &mut R) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "expansion needs at least 2 nodes");
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let mut side = vec![false; n];
        // random subset of size in [n/4, n/2]
        let k = rng.random_range(n / 4..=n / 2).max(1);
        let mut chosen = 0;
        while chosen < k {
            let v = rng.random_range(0..n);
            if !side[v] {
                side[v] = true;
                chosen += 1;
            }
        }
        let boundary = g.edges().iter().filter(|e| side[e.u] != side[e.v]).count();
        best = best.min(boundary as f64 / k as f64);
    }
    best
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn orthogonalize(v: &mut [f64]) {
    // project out the all-ones direction
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

fn normalize(v: &mut [f64]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Odd cycle C_n (not bipartite): eigenvalues 2cos(2πk/n); the
    /// largest non-trivial *magnitude* is |2cos(π(n−1)/n)| = 2cos(π/n).
    #[test]
    fn cycle_second_eigenvalue() {
        let n = 13;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        let l2 = second_eigenvalue(&g, 2000).unwrap();
        let expected = 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!(
            (l2 - expected).abs() < 0.02,
            "λ₂ = {l2}, expected {expected}"
        );
    }

    /// Even cycles are bipartite: −2 is an eigenvalue, so the magnitude
    /// estimate must return 2.
    #[test]
    fn bipartite_cycle_hits_minus_two() {
        let n = 12;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
        }
        let l2 = second_eigenvalue(&g, 800).unwrap();
        assert!((l2 - 2.0).abs() < 0.01, "λ₂ = {l2}");
    }

    /// Complete graph K_n: λ₂ = 1 (eigenvalue −1 in signed terms; the
    /// power iteration reports magnitude).
    #[test]
    fn complete_graph_second_eigenvalue() {
        let n = 8;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_unit_edge(u, v).unwrap();
            }
        }
        let l2 = second_eigenvalue(&g, 400).unwrap();
        assert!((l2 - 1.0).abs() < 0.05, "λ₂ = {l2}");
    }

    #[test]
    fn irregular_graph_rejected() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        assert!(second_eigenvalue(&g, 10).is_err());
    }

    #[test]
    fn ramanujan_threshold_values() {
        assert_eq!(ramanujan_bound(1), 0.0);
        assert!((ramanujan_bound(5) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_sample_positive_on_connected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let n = 16;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_unit_edge(v, (v + 1) % n).unwrap();
            g.add_unit_edge(v, (v + 3) % n).unwrap();
        }
        let h = edge_expansion_sample(&g, 50, &mut rng);
        assert!(h > 0.0 && h.is_finite());
    }
}
