//! Batched multi-source BFS: up to 64 sources per traversal.
//!
//! The hop-bound surrogates (`dctopo-search`'s level-0 ladder,
//! `dctopo-core`'s per-cell Theorem-1 bound) need hop distances from
//! *every* demand source. Running one scalar BFS per source costs
//! `O(sources · (n + m))`; at 1024+ switches with all-to-all-scale
//! demand that is the dominant cost of every candidate evaluation.
//!
//! This module batches 64 sources into the bit-lanes of one `u64` per
//! node (the ms-BFS formulation of Then et al., VLDB 2014): a single
//! `O(n + m)` sweep per BFS *level* advances all lanes at once, and the
//! per-arc work is two word operations instead of 64 queue pushes. The
//! result layout is lane-major — `dist[lane * n + v]` — so each lane's
//! slice is directly comparable (bitwise: distances are exact `u32`
//! hop counts) to a scalar [`crate::paths::bfs_distances`] run from the
//! same source.
//!
//! Determinism: BFS levels are integer-valued and the word sweep visits
//! nodes in index order, so the output is a pure function of the graph
//! and the source list — no tie-breaking, no float rounding, no thread
//! interaction (the sweep is sequential; batching, not parallelism, is
//! the speedup).

use crate::csr::CsrNet;
use crate::paths::UNREACHABLE;
use crate::{Graph, NodeId};

/// Maximum number of sources per [`ms_bfs`] / [`ms_bfs_csr`] batch: the
/// lane count of one `u64` bitset word.
pub const MAX_LANES: usize = 64;

/// Reusable scratch state for batched multi-source BFS.
///
/// Holds one bitset word per node for the visited set, the current
/// frontier, and the next frontier, plus the lane-major distance
/// output. Reuse one workspace across batches (and across graphs of
/// different sizes — it regrows transparently): after warm-up no run
/// allocates.
#[derive(Debug, Clone, Default)]
pub struct MsBfsWorkspace {
    /// `seen[v]` bit `l` set ⇔ lane `l`'s BFS has reached node `v`.
    seen: Vec<u64>,
    /// Nodes discovered in the current level, one lane bit each.
    frontier: Vec<u64>,
    /// Nodes being discovered for the next level.
    next: Vec<u64>,
    /// Lane-major hop distances: `dist[lane * n + v]`
    /// ([`UNREACHABLE`] where lane `lane`'s BFS never reached `v`).
    dist: Vec<u32>,
    /// Node count of the most recent run.
    n: usize,
    /// Lane count of the most recent run.
    lanes: usize,
}

impl MsBfsWorkspace {
    /// Workspace pre-sized for `n`-node graphs and full 64-lane batches.
    pub fn new(n: usize) -> Self {
        MsBfsWorkspace {
            seen: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            dist: Vec::with_capacity(n * MAX_LANES),
            n: 0,
            lanes: 0,
        }
    }

    /// Hop distances of lane `lane`'s source from the most recent run:
    /// one entry per node, [`UNREACHABLE`] where that BFS never arrived.
    /// Bitwise identical to [`crate::paths::bfs_distances`] from the
    /// same source.
    ///
    /// # Panics
    /// If `lane` is not less than the lane count of the last run.
    pub fn lane_distances(&self, lane: usize) -> &[u32] {
        assert!(lane < self.lanes, "lane {lane} of {}", self.lanes);
        &self.dist[lane * self.n..(lane + 1) * self.n]
    }

    /// Lane count of the most recent run (the batch's source count).
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Reset for a fresh run over `n` nodes and `lanes` lanes.
    fn begin(&mut self, n: usize, lanes: usize) {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "batch of {lanes} sources exceeds the {MAX_LANES}-lane word"
        );
        self.n = n;
        self.lanes = lanes;
        self.seen.clear();
        self.seen.resize(n, 0);
        self.frontier.clear();
        self.frontier.resize(n, 0);
        self.next.clear();
        self.next.resize(n, 0);
        self.dist.clear();
        self.dist.resize(n * lanes, UNREACHABLE);
    }

    /// Seed lane `lane` at source `s` (level 0).
    fn seed(&mut self, lane: usize, s: NodeId) {
        self.seen[s] |= 1 << lane;
        self.frontier[s] |= 1 << lane;
        self.dist[lane * self.n + s] = 0;
    }

    /// Record the lanes of `word` discovering node `v` at `level`.
    #[inline]
    fn record(&mut self, v: usize, mut word: u64, level: u32) {
        while word != 0 {
            let lane = word.trailing_zeros() as usize;
            self.dist[lane * self.n + v] = level;
            word &= word - 1;
        }
    }
}

/// Batched multi-source BFS over a [`Graph`]: `sources[l]` seeds lane
/// `l`. Read per-lane distances through
/// [`MsBfsWorkspace::lane_distances`].
///
/// # Panics
/// If `sources` is empty or holds more than [`MAX_LANES`] entries.
/// Duplicate sources are permitted (the lanes simply march in
/// lock-step).
pub fn ms_bfs(g: &Graph, sources: &[NodeId], ws: &mut MsBfsWorkspace) {
    run(g.node_count(), sources, ws, |v| g.neighbors(v));
}

/// Batched multi-source BFS over a [`CsrNet`] (hop metric: every live
/// arc counts 1; disabled arcs are absent from the adjacency and thus
/// invisible, exactly as in the weighted traversals). `sources[l]`
/// seeds lane `l`.
///
/// Assumes the live arc set is direction-symmetric (`u→v` live iff
/// `v→u` live), which [`CsrNet::with_disabled_arcs`] guarantees by
/// construction — it always fails both arcs of a link together. The
/// bottom-up sweep direction pulls across out-arcs in reverse and
/// would see phantom edges under one-sided disabling.
///
/// # Panics
/// As [`ms_bfs`].
pub fn ms_bfs_csr(net: &CsrNet, sources: &[NodeId], ws: &mut MsBfsWorkspace) {
    run(net.node_count(), sources, ws, |v| {
        net.out_slots(v).1.iter().map(|&w| w as usize)
    });
}

/// The shared level-synchronous word sweep, generic over neighbor
/// iteration.
///
/// Direction-optimizing (Beamer-style): sparse levels push frontier
/// words along out-arcs (top-down); once the frontier occupies at
/// least 1/8 of the node words — on expander-like fabrics that is
/// every level past the first — the sweep flips to a bottom-up pass
/// that scans each still-unseen node's neighbors and ORs their
/// frontier words, early-exiting as soon as every missing lane is
/// covered. Both directions compute the identical next-level lane
/// sets (the level sets are a pure function of graph + sources), so
/// the recorded distances are byte-for-byte the same either way.
fn run<I, F>(n: usize, sources: &[NodeId], ws: &mut MsBfsWorkspace, neighbors: F)
where
    I: Iterator<Item = NodeId>,
    F: Fn(NodeId) -> I,
{
    ws.begin(n, sources.len());
    for (lane, &s) in sources.iter().enumerate() {
        assert!(s < n, "source {s} out of range for {n} nodes");
        ws.seed(lane, s);
    }
    let full: u64 = if sources.len() == MAX_LANES {
        u64::MAX
    } else {
        (1u64 << sources.len()) - 1
    };
    let mut frontier_nnz = ws.frontier.iter().filter(|&&w| w != 0).count();
    let mut level = 0u32;
    loop {
        level += 1;
        let mut any = false;
        if frontier_nnz * 8 >= n {
            // bottom-up: each unseen node pulls from its neighbors
            for v in 0..n {
                let unseen = full & !ws.seen[v];
                if unseen == 0 {
                    continue;
                }
                let mut acc = 0u64;
                for w in neighbors(v) {
                    acc |= ws.frontier[w];
                    if acc & unseen == unseen {
                        break;
                    }
                }
                let new = acc & unseen;
                if new != 0 {
                    ws.seen[v] |= new;
                    ws.next[v] |= new;
                    any = true;
                }
            }
        } else {
            // top-down: each frontier node pushes to its neighbors
            for v in 0..n {
                let f = ws.frontier[v];
                if f == 0 {
                    continue;
                }
                for w in neighbors(v) {
                    let new = f & !ws.seen[w];
                    if new != 0 {
                        ws.seen[w] |= new;
                        ws.next[w] |= new;
                        any = true;
                    }
                }
            }
        }
        if !any {
            break;
        }
        frontier_nnz = 0;
        for v in 0..n {
            let new = ws.next[v];
            if new != 0 {
                frontier_nnz += 1;
                ws.record(v, new, level);
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next[..n].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::bfs_distances;

    fn cube() -> Graph {
        let mut g = Graph::new(8);
        for u in 0..8usize {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn lanes_match_scalar_bfs_on_cube() {
        let g = cube();
        let sources: Vec<usize> = (0..8).collect();
        let mut ws = MsBfsWorkspace::new(g.node_count());
        ms_bfs(&g, &sources, &mut ws);
        assert_eq!(ws.lane_count(), 8);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(ws.lane_distances(lane), &bfs_distances(&g, s)[..]);
        }
    }

    #[test]
    fn disconnected_lanes_report_unreachable() {
        let mut g = Graph::new(5);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let mut ws = MsBfsWorkspace::default();
        ms_bfs(&g, &[0, 2, 4], &mut ws);
        assert_eq!(
            ws.lane_distances(0),
            &[0, 1, UNREACHABLE, UNREACHABLE, UNREACHABLE]
        );
        assert_eq!(
            ws.lane_distances(1),
            &[UNREACHABLE, UNREACHABLE, 0, 1, UNREACHABLE]
        );
        assert_eq!(
            ws.lane_distances(2),
            &[UNREACHABLE, UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]
        );
    }

    #[test]
    fn csr_view_skips_disabled_arcs() {
        // path 0-1-2: failing edge 1-2 cuts node 2 off from lane 0
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        let e12 = g.add_unit_edge(1, 2).unwrap();
        let net = CsrNet::from_graph(&g);
        let view = net.with_disabled_arcs(&[e12 << 1]).unwrap();
        let mut ws = MsBfsWorkspace::default();
        ms_bfs_csr(&view, &[0], &mut ws);
        assert_eq!(ws.lane_distances(0), &[0, 1, UNREACHABLE]);
    }

    #[test]
    fn workspace_reuse_across_sizes() {
        let g = cube();
        let mut ws = MsBfsWorkspace::default();
        ms_bfs(&g, &[7], &mut ws);
        assert_eq!(ws.lane_distances(0), &bfs_distances(&g, 7)[..]);
        let mut small = Graph::new(2);
        small.add_unit_edge(0, 1).unwrap();
        ms_bfs(&small, &[1, 0], &mut ws);
        assert_eq!(ws.lane_distances(0), &[1, 0]);
        assert_eq!(ws.lane_distances(1), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_panics() {
        let g = cube();
        let sources = vec![0usize; 65];
        ms_bfs(&g, &sources, &mut MsBfsWorkspace::default());
    }
}
