//! k-shortest simple paths (Yen's algorithm, hop metric) and ECMP
//! shortest-path enumeration.
//!
//! The packet-level simulator routes MPTCP subflows over the `k` shortest
//! paths between each server pair, exactly as the paper's §8.2 ("MPTCP
//! with the shortest paths, using as many as 8 MPTCP subflows").

use std::collections::HashSet;

use crate::graph::NodeId;
use crate::paths::{bfs_distances, UNREACHABLE};
use crate::{Graph, GraphError};

/// A simple path stored as the node sequence `src, ..., dst`.
pub type NodePath = Vec<NodeId>;

/// Shortest path by hop count avoiding a set of banned nodes and banned
/// edges (edges given as unordered node pairs). Returns the node sequence.
fn shortest_path_avoiding(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[bool],
    banned_edges: &HashSet<(NodeId, NodeId)>,
) -> Option<NodePath> {
    let n = g.node_count();
    let mut prev = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[src] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        if v == dst {
            break;
        }
        for w in g.neighbors(v) {
            let key = if v < w { (v, w) } else { (w, v) };
            if seen[w] || banned_nodes[w] || banned_edges.contains(&key) {
                continue;
            }
            seen[w] = true;
            prev[w] = v;
            queue.push_back(w);
        }
    }
    if !seen[dst] {
        return None;
    }
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = prev[v];
        path.push(v);
    }
    path.reverse();
    Some(path)
}

/// Yen's algorithm: up to `k` shortest *simple* paths from `src` to `dst`
/// by hop count, in non-decreasing length order.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// simple paths; errors only when no path exists at all.
pub fn yen_k_shortest(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Result<Vec<NodePath>, GraphError> {
    if src == dst {
        return Err(GraphError::Unrealizable(
            "k-shortest with src == dst".into(),
        ));
    }
    let no_nodes = vec![false; g.node_count()];
    let first = shortest_path_avoiding(g, src, dst, &no_nodes, &HashSet::new())
        .ok_or(GraphError::NoPath { src, dst })?;
    let mut found: Vec<NodePath> = vec![first];
    let mut candidates: Vec<NodePath> = Vec::new();
    while found.len() < k {
        let last = found.last().expect("at least one path found").clone();
        // For each spur node in the previous path, ban the edges that
        // previous paths with the same root used, ban root nodes, and
        // search for a deviation.
        for i in 0..last.len() - 1 {
            let spur = last[i];
            let root = &last[..=i];
            let mut banned_edges = HashSet::new();
            for p in &found {
                if p.len() > i && p[..=i] == *root {
                    let (a, b) = (p[i], p[i + 1]);
                    banned_edges.insert(if a < b { (a, b) } else { (b, a) });
                }
            }
            let mut banned_nodes = vec![false; g.node_count()];
            for &v in &root[..i] {
                banned_nodes[v] = true;
            }
            if let Some(tail) = shortest_path_avoiding(g, spur, dst, &banned_nodes, &banned_edges) {
                let mut path = root[..i].to_vec();
                path.extend(tail);
                if !found.contains(&path) && !candidates.contains(&path) {
                    candidates.push(path);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // pick the shortest candidate (stable tie-break on node sequence)
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.len().cmp(&b.len()).then_with(|| a.cmp(b)))
            .map(|(i, _)| i)
            .expect("candidates not empty");
        found.push(candidates.swap_remove(best));
    }
    Ok(found)
}

/// Enumerate up to `limit` distinct *shortest* paths (all of minimal hop
/// count) from `src` to `dst`, via DFS over the shortest-path DAG.
///
/// This models ECMP: equal-cost multipath routing spreads traffic over
/// exactly these paths.
pub fn ecmp_shortest_paths(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> Result<Vec<NodePath>, GraphError> {
    if src == dst {
        return Err(GraphError::Unrealizable("ecmp with src == dst".into()));
    }
    let dist_to_dst = bfs_distances(g, dst);
    if dist_to_dst[src] == UNREACHABLE {
        return Err(GraphError::NoPath { src, dst });
    }
    let mut out = Vec::new();
    let mut stack = vec![src];
    dfs_dag(g, dst, &dist_to_dst, &mut stack, &mut out, limit);
    Ok(out)
}

fn dfs_dag(
    g: &Graph,
    dst: NodeId,
    dist_to_dst: &[u32],
    stack: &mut Vec<NodeId>,
    out: &mut Vec<NodePath>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    let v = *stack.last().expect("stack non-empty");
    if v == dst {
        out.push(stack.clone());
        return;
    }
    // a shortest path must strictly decrease distance-to-destination
    let dv = dist_to_dst[v];
    let mut nexts: Vec<NodeId> = g
        .neighbors(v)
        .filter(|&w| dist_to_dst[w] != UNREACHABLE && dist_to_dst[w] + 1 == dv)
        .collect();
    nexts.sort_unstable();
    nexts.dedup();
    for w in nexts {
        stack.push(w);
        dfs_dag(g, dst, dist_to_dst, stack, out, limit);
        stack.pop();
        if out.len() >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-cycle 0-1-2-3-0.
    fn cycle4() -> Graph {
        let mut g = Graph::new(4);
        for v in 0..4 {
            g.add_unit_edge(v, (v + 1) % 4).unwrap();
        }
        g
    }

    #[test]
    fn yen_on_cycle() {
        let g = cycle4();
        let ps = yen_k_shortest(&g, 0, 2, 5).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].len(), 3); // both routes are 2 hops
        assert_eq!(ps[1].len(), 3);
        assert_ne!(ps[0], ps[1]);
    }

    #[test]
    fn yen_orders_by_length() {
        // path 0-1-2 plus chord 0-2: shortest is direct, second is 2 hops
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(1, 2).unwrap();
        g.add_unit_edge(0, 2).unwrap();
        let ps = yen_k_shortest(&g, 0, 2, 5).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0], vec![0, 2]);
        assert_eq!(ps[1], vec![0, 1, 2]);
    }

    #[test]
    fn yen_no_path_errors() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        assert!(matches!(
            yen_k_shortest(&g, 0, 2, 3),
            Err(GraphError::NoPath { .. })
        ));
    }

    #[test]
    fn yen_paths_are_simple() {
        // complete graph K5: plenty of paths; all must be simple
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                g.add_unit_edge(u, v).unwrap();
            }
        }
        let ps = yen_k_shortest(&g, 0, 4, 10).unwrap();
        assert!(ps.len() >= 4);
        for p in &ps {
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(q.len(), p.len(), "path revisits a node: {p:?}");
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), 4);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
        // lengths non-decreasing
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn ecmp_counts_shortest_paths() {
        let g = cycle4();
        let ps = ecmp_shortest_paths(&g, 0, 2, 8).unwrap();
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn ecmp_respects_limit() {
        // hypercube Q3 has 6 shortest 0->7 paths
        let mut g = Graph::new(8);
        for u in 0..8usize {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
        }
        let all = ecmp_shortest_paths(&g, 0, 7, 100).unwrap();
        assert_eq!(all.len(), 6);
        let capped = ecmp_shortest_paths(&g, 0, 7, 4).unwrap();
        assert_eq!(capped.len(), 4);
    }
}
