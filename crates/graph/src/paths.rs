//! Shortest-path algorithms: unweighted BFS, all-pairs path statistics,
//! and Dijkstra over arbitrary per-arc lengths.
//!
//! The throughput upper bound of the paper (Theorem 1) divides total
//! capacity by `⟨D⟩ · f`, where `⟨D⟩` is the *average shortest path
//! length* over the relevant node pairs, so ASPL computation is a
//! first-class citizen here. The flow solver uses [`dijkstra`] with
//! exponential length functions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{ArcId, Graph, GraphError, NodeId};

/// Hop distance used for unreachable nodes in BFS output.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source unweighted shortest-path (hop) distances.
///
/// Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for w in g.neighbors(v) {
            if dist[w] == UNREACHABLE {
                dist[w] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Reusable scratch state for repeated BFS runs.
///
/// Search loops (the `dctopo-search` surrogate ladder) run thousands of
/// single-source BFS sweeps over candidate graphs of identical size;
/// allocating the distance array and queue per run would dominate the
/// O(n + m) traversal. The workspace owns both and
/// [`bfs_distances_with`] reuses them, allocation-free once warm.
#[derive(Debug, Clone, Default)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    /// Flat visit queue: every node is enqueued at most once, so a Vec
    /// plus a read cursor replaces a ring buffer.
    queue: Vec<u32>,
}

impl BfsWorkspace {
    /// A workspace pre-sized for `n`-node graphs (it transparently
    /// regrows if handed a larger graph later).
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            dist: Vec::with_capacity(n),
            queue: Vec::with_capacity(n),
        }
    }

    /// Distances of the most recent [`bfs_distances_with`] run
    /// (unreachable nodes hold [`UNREACHABLE`]).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }
}

/// [`bfs_distances`] into a reusable workspace: identical output,
/// no per-call allocation once the workspace is warm. Read the result
/// through [`BfsWorkspace::distances`].
pub fn bfs_distances_with(g: &Graph, src: NodeId, ws: &mut BfsWorkspace) {
    let n = g.node_count();
    ws.dist.clear();
    ws.dist.resize(n, UNREACHABLE);
    ws.queue.clear();
    ws.dist[src] = 0;
    ws.queue.push(src as u32);
    let mut head = 0usize;
    while head < ws.queue.len() {
        let v = ws.queue[head] as usize;
        head += 1;
        let dv = ws.dist[v];
        for w in g.neighbors(v) {
            if ws.dist[w] == UNREACHABLE {
                ws.dist[w] = dv + 1;
                ws.queue.push(w as u32);
            }
        }
    }
}

/// Aggregate all-pairs shortest-path statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Average shortest path length over ordered reachable pairs.
    pub aspl: f64,
    /// Maximum shortest path length (the diameter).
    pub diameter: u32,
    /// Number of ordered node pairs considered.
    pub pairs: usize,
}

/// All-pairs average shortest path length and diameter over *all* nodes.
///
/// Fails with [`GraphError::Disconnected`] if any pair is unreachable.
pub fn path_stats(g: &Graph) -> Result<PathStats, GraphError> {
    path_stats_with(g, &mut BfsWorkspace::new(g.node_count()))
}

/// ASPL and diameter restricted to ordered pairs of the given node set.
///
/// This is what the heterogeneous experiments need: server-to-server path
/// statistics where the interesting set is "nodes that host servers"
/// (or the server nodes themselves).
pub fn path_stats_over(g: &Graph, nodes: &[NodeId]) -> Result<PathStats, GraphError> {
    let mut sum = 0u64;
    let mut pairs = 0usize;
    let mut diameter = 0u32;
    let member = {
        let mut m = vec![false; g.node_count()];
        for &v in nodes {
            m[v] = true;
        }
        m
    };
    for &src in nodes {
        let dist = bfs_distances(g, src);
        for (w, &d) in dist.iter().enumerate() {
            if w == src || !member[w] {
                continue;
            }
            if d == UNREACHABLE {
                return Err(GraphError::Disconnected);
            }
            sum += u64::from(d);
            diameter = diameter.max(d);
            pairs += 1;
        }
    }
    if pairs == 0 {
        return Err(GraphError::Unrealizable(
            "no node pairs to average over".into(),
        ));
    }
    Ok(PathStats {
        aspl: sum as f64 / pairs as f64,
        diameter,
        pairs,
    })
}

/// [`path_stats`] with a reusable [`BfsWorkspace`]: identical output,
/// but the `n` BFS sweeps share one distance array and queue — the form
/// repeated-evaluation loops (candidate scoring in topology search)
/// use.
///
/// # Errors
/// As [`path_stats`]: [`GraphError::Disconnected`] when any ordered
/// pair is unreachable.
pub fn path_stats_with(g: &Graph, ws: &mut BfsWorkspace) -> Result<PathStats, GraphError> {
    let n = g.node_count();
    let mut sum = 0u64;
    let mut pairs = 0usize;
    let mut diameter = 0u32;
    for src in 0..n {
        bfs_distances_with(g, src, ws);
        for (w, &d) in ws.distances().iter().enumerate() {
            if w == src {
                continue;
            }
            if d == UNREACHABLE {
                return Err(GraphError::Disconnected);
            }
            sum += u64::from(d);
            diameter = diameter.max(d);
            pairs += 1;
        }
    }
    if pairs == 0 {
        return Err(GraphError::Unrealizable(
            "no node pairs to average over".into(),
        ));
    }
    Ok(PathStats {
        aspl: sum as f64 / pairs as f64,
        diameter,
        pairs,
    })
}

/// Average shortest-path distance over an explicit list of ordered pairs.
///
/// Used for traffic-matrix-weighted `⟨D⟩` (e.g. the `Σ d_i` term of
/// Theorem 1 under a specific permutation).
pub fn mean_pair_distance(g: &Graph, pairs: &[(NodeId, NodeId)]) -> Result<f64, GraphError> {
    if pairs.is_empty() {
        return Err(GraphError::Unrealizable("empty pair list".into()));
    }
    // group by source to reuse BFS runs
    let mut by_src: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for &(s, t) in pairs {
        by_src[s].push(t);
    }
    let mut sum = 0u64;
    for (s, ts) in by_src.iter().enumerate() {
        if ts.is_empty() {
            continue;
        }
        let dist = bfs_distances(g, s);
        for &t in ts {
            if dist[t] == UNREACHABLE {
                return Err(GraphError::NoPath { src: s, dst: t });
            }
            sum += u64::from(dist[t]);
        }
    }
    Ok(sum as f64 / pairs.len() as f64)
}

#[derive(Copy, Clone, PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on dist; ties broken by node for determinism
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// Distance per node (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// For each node, the arc used to reach it in the tree
    /// (`None` for the source and unreachable nodes).
    pub parent_arc: Vec<Option<ArcId>>,
}

impl ShortestPathTree {
    /// Walk parent pointers from `dst` back to the source,
    /// returning the arcs in forward (source-to-dst) order.
    pub fn path_arcs(&self, g: &Graph, dst: NodeId) -> Option<Vec<ArcId>> {
        if !self.dist[dst].is_finite() {
            return None;
        }
        let mut arcs = Vec::new();
        let mut v = dst;
        while let Some(a) = self.parent_arc[v] {
            arcs.push(a);
            v = g.arc_tail(a);
        }
        arcs.reverse();
        Some(arcs)
    }
}

/// Dijkstra with a per-arc length function given as a slice indexed by
/// [`ArcId`]. Lengths must be non-negative.
///
/// This is the inner loop of the Fleischer max-concurrent-flow solver,
/// which re-runs it with exponentially reweighted lengths.
pub fn dijkstra(g: &Graph, src: NodeId, arc_len: &[f64]) -> ShortestPathTree {
    debug_assert_eq!(arc_len.len(), g.arc_count());
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_arc = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapItem { dist: d, node: v }) = heap.pop() {
        if done[v] {
            continue;
        }
        done[v] = true;
        for (a, w) in g.out_arcs(v) {
            if done[w] {
                continue;
            }
            let nd = d + arc_len[a];
            if nd < dist[w] {
                dist[w] = nd;
                parent_arc[w] = Some(a);
                heap.push(HeapItem { dist: nd, node: w });
            }
        }
    }
    ShortestPathTree { dist, parent_arc }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    fn path4() -> Graph {
        let mut g = Graph::new(4);
        for v in 0..3 {
            g.add_unit_edge(v, v + 1).unwrap();
        }
        g
    }

    /// 3-cube (Q3): 8 nodes, degree 3.
    fn cube() -> Graph {
        let mut g = Graph::new(8);
        for u in 0..8usize {
            for b in 0..3 {
                let v = u ^ (1 << b);
                if u < v {
                    g.add_unit_edge(u, v).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path4();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_unit_edge(0, 1).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn path_stats_path4() {
        // ordered pairs distances: 1,2,3 (x2 directions) + 1,2 (x2) + 1 (x2) = 20 hops over 12 pairs
        let s = path_stats(&path4()).unwrap();
        assert_eq!(s.pairs, 12);
        assert!((s.aspl - 20.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.diameter, 3);
    }

    #[test]
    fn path_stats_cube() {
        // Q3 ASPL = 12/7 (sum over distances 1,1,1,2,2,2,3 per source)
        let s = path_stats(&cube()).unwrap();
        assert!((s.aspl - 12.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.diameter, 3);
    }

    #[test]
    fn path_stats_disconnected_errors() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        assert_eq!(path_stats(&g), Err(GraphError::Disconnected));
    }

    #[test]
    fn path_stats_over_subset() {
        let g = path4();
        let s = path_stats_over(&g, &[0, 3]).unwrap();
        assert_eq!(s.pairs, 2);
        assert!((s.aspl - 3.0).abs() < 1e-12);
    }

    #[test]
    fn workspace_bfs_matches_allocating_bfs() {
        let g = cube();
        let mut ws = BfsWorkspace::new(g.node_count());
        for src in 0..g.node_count() {
            bfs_distances_with(&g, src, &mut ws);
            assert_eq!(ws.distances(), &bfs_distances(&g, src)[..]);
        }
        // reuse across differently-sized graphs (workspace regrows)
        let p = path4();
        bfs_distances_with(&p, 0, &mut ws);
        assert_eq!(ws.distances(), &bfs_distances(&p, 0)[..]);
    }

    #[test]
    fn path_stats_with_matches_path_stats() {
        let mut ws = BfsWorkspace::default();
        for g in [path4(), cube()] {
            assert_eq!(
                path_stats_with(&g, &mut ws).unwrap(),
                path_stats(&g).unwrap()
            );
        }
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        assert_eq!(path_stats_with(&g, &mut ws), Err(GraphError::Disconnected));
    }

    #[test]
    fn mean_pair_distance_matches_bfs() {
        let g = cube();
        let d = mean_pair_distance(&g, &[(0, 7), (1, 2), (3, 3_usize ^ 4)]).unwrap();
        // 0->7: 3 hops, 1->2: 2 hops, 3->7: 1 hop
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unit_lengths_match_bfs() {
        let g = cube();
        let lens = vec![1.0; g.arc_count()];
        let t = dijkstra(&g, 0, &lens);
        let b = bfs_distances(&g, 0);
        for (dw, &du) in t.dist.iter().zip(&b) {
            assert!((dw - f64::from(du)).abs() < 1e-12);
        }
    }

    #[test]
    fn dijkstra_respects_weights() {
        // triangle where direct edge is longer than two-hop route
        let mut g = Graph::new(3);
        let e01 = g.add_unit_edge(0, 1).unwrap();
        let e12 = g.add_unit_edge(1, 2).unwrap();
        let e02 = g.add_unit_edge(0, 2).unwrap();
        let mut lens = vec![0.0; g.arc_count()];
        lens[e01 << 1] = 1.0;
        lens[(e01 << 1) | 1] = 1.0;
        lens[e12 << 1] = 1.0;
        lens[(e12 << 1) | 1] = 1.0;
        lens[e02 << 1] = 5.0;
        lens[(e02 << 1) | 1] = 5.0;
        let t = dijkstra(&g, 0, &lens);
        assert!((t.dist[2] - 2.0).abs() < 1e-12);
        let arcs = t.path_arcs(&g, 2).unwrap();
        assert_eq!(arcs.len(), 2);
        assert_eq!(g.arc_tail(arcs[0]), 0);
        assert_eq!(g.arc_head(arcs[1]), 2);
    }

    #[test]
    fn path_arcs_unreachable_is_none() {
        let mut g = Graph::new(2);
        let _ = g.add_node();
        g.add_unit_edge(0, 1).unwrap();
        let lens = vec![1.0; g.arc_count()];
        let t = dijkstra(&g, 0, &lens);
        assert!(t.path_arcs(&g, 2).is_none());
    }
}
