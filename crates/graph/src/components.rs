//! Connectivity queries.

use crate::Graph;

/// Label each node with a component id in `0..k`; returns `(labels, k)`.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut k = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = k;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for w in g.neighbors(v) {
                if label[w] == usize::MAX {
                    label[w] = k;
                    stack.push(w);
                }
            }
        }
        k += 1;
    }
    (label, k)
}

/// Whether the graph is connected (empty and single-node graphs count as
/// connected).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || components(g).1 == 1
}

/// Number of edges crossing a node bipartition, weighted by capacity in
/// both directions (the paper's cross-cluster capacity `C̄`).
///
/// `in_a[v]` says whether node `v` is on side A.
pub fn cut_capacity(g: &Graph, in_a: &[bool]) -> f64 {
    2.0 * g
        .edges()
        .iter()
        .filter(|e| in_a[e.u] != in_a[e.v])
        .map(|e| e.capacity)
        .sum::<f64>()
}

/// Unweighted count of edges crossing a node bipartition.
pub fn cut_size(g: &Graph, in_a: &[bool]) -> usize {
    g.edges().iter().filter(|e| in_a[e.u] != in_a[e.v]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_two_triangles() {
        let mut g = Graph::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_unit_edge(u, v).unwrap();
        }
        let (label, k) = components(&g);
        assert_eq!(k, 2);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[1], label[2]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[3]);
        assert!(!is_connected(&g));
        g.add_unit_edge(2, 3).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn cut_capacity_counts_both_directions() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0).unwrap(); // inside A
        g.add_edge(2, 3, 1.0).unwrap(); // inside B
        g.add_edge(0, 2, 3.0).unwrap(); // crossing
        g.add_edge(1, 3, 2.0).unwrap(); // crossing
        let in_a = vec![true, true, false, false];
        assert_eq!(cut_capacity(&g, &in_a), 10.0);
        assert_eq!(cut_size(&g, &in_a), 2);
    }
}
