//! Error type shared by graph construction and graph algorithms.

use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was at least the number of nodes in the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The graph's node count.
        n: usize,
    },
    /// An arc index was at least the number of arcs in the network.
    ArcOutOfRange {
        /// The offending arc index.
        arc: usize,
        /// The network's arc count.
        arcs: usize,
    },
    /// A self-loop was requested where the operation forbids it.
    SelfLoop {
        /// The node both endpoints referred to.
        node: usize,
    },
    /// An edge capacity was not strictly positive and finite.
    BadCapacity {
        /// The invalid capacity value.
        capacity: f64,
    },
    /// The graph (or the relevant part of it) is not connected, so the
    /// requested quantity (ASPL, diameter, a path) does not exist.
    Disconnected,
    /// No simple path exists between the requested endpoints.
    NoPath {
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
    },
    /// A degree sequence or swap request cannot be satisfied
    /// (e.g. odd total degree, or not enough distinct partners).
    Unrealizable(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::ArcOutOfRange { arc, arcs } => {
                write!(
                    f,
                    "arc index {arc} out of range for network with {arcs} arcs"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::BadCapacity { capacity } => {
                write!(
                    f,
                    "edge capacity must be positive and finite, got {capacity}"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::NoPath { src, dst } => write!(f, "no path from {src} to {dst}"),
            GraphError::Unrealizable(msg) => write!(f, "unrealizable request: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = GraphError::BadCapacity { capacity: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = GraphError::NoPath { src: 1, dst: 2 };
        assert!(e.to_string().contains("1"));
        assert!(GraphError::Disconnected.to_string().contains("connected"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::Disconnected);
    }
}
