//! Deterministic bucketed (delta-stepping) single-source shortest
//! paths over a [`CsrNet`], bitwise-compatible with
//! [`CsrNet::dijkstra`].
//!
//! The FPTAS dual-length passes run one full Dijkstra per source group
//! against a shared length snapshot. At 1024+ switches a scalar heap
//! traversal serialises the whole pass; this module replaces it with a
//! delta-stepping formulation (Meyer & Sanders): nodes are grouped into
//! distance buckets of width Δ, buckets are processed in fixed
//! ascending order, and the relaxations *within* a bucket — the bulk of
//! the work — fan out over the worker pool.
//!
//! ## Why the result is bitwise thread-count-invariant
//!
//! With non-negative lengths, the distances Dijkstra computes are the
//! unique least fixed point of the monotone relaxation
//! `d(w) = min(d(w), fl(d(u) + len(u→w)))` where `fl` is the IEEE-754
//! rounded float sum — i.e. `d(w)` is the minimum over all paths of the
//! float path sum evaluated front-to-back. *Any* relaxation schedule
//! that runs until no relaxation applies converges to that same fixed
//! point, so the final distance **bits** cannot depend on bucket
//! width, relaxation interleaving, or thread count. Parallel
//! relaxations race only through an order-independent atomic
//! minimum on the distance bits (IEEE-754 ordering equals numeric
//! ordering for non-negative floats), and every successful decrease
//! re-enqueues its node, so the run provably reaches the fixed point.
//!
//! Parent arcs are not computed during relaxation (the winning writer
//! of a racy minimum is schedule-dependent). Instead a sequential
//! post-pass grows the tree from the source in rounds: a node is
//! resolved once some already-resolved tail *achieves* its distance
//! exactly (`fl(dist(tail) + len) == dist(node)`), taking the minimum
//! `(dist(tail), tail id, arc id)` candidate of the earliest round that
//! offers one. Every reachable node has an achieving in-arc at the
//! fixed point (the arc that last set its distance achieves it), and a
//! descent argument on realizing paths shows the rounds never stall, so
//! the pass terminates with a valid, deterministically tie-broken
//! shortest-path tree — the same guarantee [`CsrNet::dijkstra_repair`]
//! documents for float-absorption plateaus.
//!
//! The workspace is left exactly as a completed [`CsrNet::dijkstra`]
//! would leave it (full `dist`/`parent_arc`, empty heap), so
//! [`CsrNet::dijkstra_repair`] may be applied on top.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::csr::{pack, CsrNet, DijkstraWorkspace, NO_ARC};
use crate::NodeId;

/// Frontier size below which a bucket's relaxations run sequentially:
/// pool dispatch on a handful of nodes costs more than the arithmetic
/// it distributes. Purely a scheduling gate — the fixed point (and thus
/// the output bits) is identical either way.
const PAR_MIN_FRONTIER: usize = 256;

/// Bins of the frontier-occupancy histogram in [`DeltaStats`]:
/// bin `i` counts relaxation rounds whose frontier held
/// `[2^i, 2^(i+1))` nodes (the last bin absorbs everything larger).
pub const OCCUPANCY_BINS: usize = 24;

/// Aggregated execution statistics of the bucketed SSSP, accumulated
/// into the [`DijkstraWorkspace`] across [`sssp`] calls (mirroring the
/// settle counter) so sequential callers can snapshot/diff them per
/// solver phase.
///
/// Every field except the `cas_*` pair is **deterministic** — a pure
/// function of the instance and lengths, identical at any thread
/// count, because the per-round frontier *sets* are schedule-invariant
/// (each round's distance array is the minimum over all offers of the
/// previous round, regardless of interleaving). The `cas_*` counters
/// depend on how relaxations race and belong in a trace's
/// non-deterministic section only.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DeltaStats {
    /// Completed [`sssp`] runs.
    pub runs: u64,
    /// Buckets popped (outer loop iterations).
    pub buckets: u64,
    /// Light-loop relaxation rounds.
    pub light_rounds: u64,
    /// Light-loop node expansions: total frontier memberships across
    /// rounds. This is the Dijkstra-equivalent work the settle counter
    /// credits (a node re-expanded in a later round pays again, like a
    /// heap pop would).
    pub expansions: u64,
    /// Heavy-phase node expansions (once per node settled in a bucket).
    pub heavy_expansions: u64,
    /// Out-arc relaxation attempts scanned (light + heavy).
    pub edge_scans: u64,
    /// Relaxation rounds that fanned out on the worker pool
    /// (frontier ≥ the parallel threshold and more than one thread
    /// configured) — each one is a fork/join barrier.
    pub par_rounds: u64,
    /// Relaxation rounds that ran sequentially (below the threshold).
    pub seq_rounds: u64,
    /// Histogram of frontier sizes per round, log2 bins — see
    /// [`OCCUPANCY_BINS`].
    pub occupancy_hist: [u64; OCCUPANCY_BINS],
    /// Successful atomic distance decreases (**non-deterministic**:
    /// when two offers race, whether the larger one ever lands is
    /// schedule-dependent).
    pub cas_success: u64,
    /// Failed compare-exchange attempts (**non-deterministic**; pure
    /// contention signal).
    pub cas_retries: u64,
}

impl DeltaStats {
    /// Element-wise saturating difference `self - since`: the activity
    /// between two snapshots of an accumulating workspace counter.
    #[must_use]
    pub fn since(&self, earlier: &DeltaStats) -> DeltaStats {
        let mut occupancy_hist = [0u64; OCCUPANCY_BINS];
        for (o, (a, b)) in occupancy_hist
            .iter_mut()
            .zip(self.occupancy_hist.iter().zip(&earlier.occupancy_hist))
        {
            *o = a.saturating_sub(*b);
        }
        DeltaStats {
            runs: self.runs.saturating_sub(earlier.runs),
            buckets: self.buckets.saturating_sub(earlier.buckets),
            light_rounds: self.light_rounds.saturating_sub(earlier.light_rounds),
            expansions: self.expansions.saturating_sub(earlier.expansions),
            heavy_expansions: self
                .heavy_expansions
                .saturating_sub(earlier.heavy_expansions),
            edge_scans: self.edge_scans.saturating_sub(earlier.edge_scans),
            par_rounds: self.par_rounds.saturating_sub(earlier.par_rounds),
            seq_rounds: self.seq_rounds.saturating_sub(earlier.seq_rounds),
            occupancy_hist,
            cas_success: self.cas_success.saturating_sub(earlier.cas_success),
            cas_retries: self.cas_retries.saturating_sub(earlier.cas_retries),
        }
    }

    /// Merge another stats block into this one (plain sums).
    pub fn merge(&mut self, other: &DeltaStats) {
        self.runs += other.runs;
        self.buckets += other.buckets;
        self.light_rounds += other.light_rounds;
        self.expansions += other.expansions;
        self.heavy_expansions += other.heavy_expansions;
        self.edge_scans += other.edge_scans;
        self.par_rounds += other.par_rounds;
        self.seq_rounds += other.seq_rounds;
        for (a, b) in self.occupancy_hist.iter_mut().zip(&other.occupancy_hist) {
            *a += b;
        }
        self.cas_success += other.cas_success;
        self.cas_retries += other.cas_retries;
    }

    /// Record one relaxation round (light or heavy) over
    /// `frontier_size` nodes.
    fn note_round(&mut self, frontier_size: usize, parallel: bool) {
        if parallel {
            self.par_rounds += 1;
        } else {
            self.seq_rounds += 1;
        }
        let bin = (usize::BITS - frontier_size.leading_zeros()) as usize;
        self.occupancy_hist[bin.saturating_sub(1).min(OCCUPANCY_BINS - 1)] += 1;
    }
}

/// Per-thread scratch for [`sssp`]: distance-bit atomics, dedup marks,
/// and the parent-pass candidate arrays. Thread-local because the
/// caller may invoke [`sssp`] from inside a parallel pass (one scratch
/// per worker); scratch contents never influence results.
#[derive(Default)]
struct Scratch {
    /// Tentative distance bits per node (`f64::INFINITY` = unreached).
    bits: Vec<AtomicU64>,
    /// Frontier dedup stamp, bumped per inner relaxation round.
    round_mark: Vec<u64>,
    round_gen: u64,
    /// Per-bucket settled dedup stamp (one bump per bucket pop).
    pop_mark: Vec<u64>,
    /// Parent-pass candidate: best `(pack(dist, tail), arc)` this round.
    cand_key: Vec<u128>,
    cand_arc: Vec<u32>,
    cand_mark: Vec<u64>,
    /// Parent-pass resolved stamp.
    resolved: Vec<u64>,
}

impl Scratch {
    fn begin(&mut self, n: usize) {
        if self.bits.len() < n {
            self.bits.resize_with(n, || AtomicU64::new(0));
            self.round_mark.resize(n, 0);
            self.pop_mark.resize(n, 0);
            self.cand_key.resize(n, 0);
            self.cand_arc.resize(n, 0);
            self.cand_mark.resize(n, 0);
            self.resolved.resize(n, 0);
        }
        let inf = f64::INFINITY.to_bits();
        for b in &self.bits[..n] {
            b.store(inf, Ordering::Relaxed);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
}

/// Atomically lower `bits[w]` to `nd` if `nd` is strictly smaller.
/// Returns whether this call performed the decrease, bumping `retries`
/// once per failed compare-exchange (a contention counter for the
/// trace's non-deterministic section). Order-independent: the final
/// cell value is the minimum of all offered values no matter how calls
/// interleave.
#[inline]
fn relax_min(bits: &[AtomicU64], w: usize, nd: f64, retries: &mut u64) -> bool {
    let nb = nd.to_bits();
    let mut cur = bits[w].load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= nd {
            return false;
        }
        match bits[w].compare_exchange_weak(cur, nb, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => {
                *retries += 1;
                cur = seen;
            }
        }
    }
}

#[inline]
fn load(bits: &[AtomicU64], v: usize) -> f64 {
    f64::from_bits(bits[v].load(Ordering::Relaxed))
}

/// Bucket index of distance `d` (monotone in `d`; saturates for huge
/// ratios, which only coarsens bucketing, never correctness).
#[inline]
fn bucket_of(d: f64, inv_delta: f64) -> u64 {
    (d * inv_delta) as u64
}

/// Bucketed parallel SSSP from `src` under `arc_len`, writing distances
/// and a valid deterministic shortest-path tree into `ws`.
///
/// Distances are **bitwise identical** to [`CsrNet::dijkstra`] (and
/// therefore to [`crate::paths::dijkstra`]) at every thread count; see
/// the module docs for why. Parent arcs form a valid shortest-path
/// tree with deterministic `(tail distance, tail id, arc id)`
/// tie-breaking — equal to Dijkstra's choice except inside
/// float-absorption plateaus, exactly the contract
/// [`CsrNet::dijkstra_repair`] already documents. The workspace ends in
/// completed-full-run state, so a repair may be layered on top.
///
/// `arc_len` must hold one non-negative entry per arc.
pub fn sssp(net: &CsrNet, src: NodeId, arc_len: &[f64], ws: &mut DijkstraWorkspace) {
    debug_assert_eq!(arc_len.len(), net.arc_count());
    let n = net.node_count();
    ws.begin(n);
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        run(net, src, arc_len, ws, &mut scratch);
    });
}

/// Mean length over live adjacency arcs — the bucket width Δ. Any
/// positive finite value is correct; the mean keeps typical frontiers
/// a few buckets wide under the FPTAS's skewed length distributions.
fn bucket_width(net: &CsrNet, arc_len: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut cnt = 0usize;
    for v in 0..net.node_count() {
        let (arcs, _) = net.out_slots(v);
        for &a in arcs {
            sum += arc_len[a as usize];
            cnt += 1;
        }
    }
    let mean = if cnt > 0 { sum / cnt as f64 } else { 1.0 };
    if mean.is_finite() && mean > 0.0 {
        mean
    } else {
        // degenerate lengths (all zero, or sums overflowing): one
        // bucket, i.e. plain chaotic relaxation — still the fixed point
        f64::MAX
    }
}

fn run(
    net: &CsrNet,
    src: NodeId,
    arc_len: &[f64],
    ws: &mut DijkstraWorkspace,
    scratch: &mut Scratch,
) {
    let n = net.node_count();
    scratch.begin(n);
    let delta = bucket_width(net, arc_len);
    let inv_delta = 1.0 / delta;
    scratch.bits[src].store(0.0f64.to_bits(), Ordering::Relaxed);
    let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    buckets.insert(0, vec![src as u32]);
    let mut st = DeltaStats {
        runs: 1,
        ..DeltaStats::default()
    };
    let mut settled: Vec<u32> = Vec::new();

    while let Some((b, mut list)) = buckets.pop_first() {
        st.buckets += 1;
        // one settled set per bucket pop: nodes whose bucket-b distance
        // is final once the light loop below converges
        let pop_gen = {
            scratch.round_gen += 1;
            scratch.round_gen
        };
        settled.clear();
        // -- light loop: relax arcs shorter than Δ until no relaxation
        //    lands back in bucket b --
        loop {
            scratch.round_gen += 1;
            let round_gen = scratch.round_gen;
            // frontier = current-bucket nodes, deduped for this round
            let mut frontier: Vec<u32> = Vec::with_capacity(list.len());
            for &v in &list {
                let vi = v as usize;
                if scratch.round_mark[vi] == round_gen {
                    continue;
                }
                if bucket_of(load(&scratch.bits, vi), inv_delta) != b {
                    continue; // stale: settled in an earlier bucket
                }
                scratch.round_mark[vi] = round_gen;
                frontier.push(v);
                if scratch.pop_mark[vi] != pop_gen {
                    scratch.pop_mark[vi] = pop_gen;
                    settled.push(v);
                }
            }
            if frontier.is_empty() {
                break;
            }
            st.light_rounds += 1;
            st.expansions += frontier.len() as u64;
            let decreased = relax(
                net,
                arc_len,
                &scratch.bits,
                &frontier,
                |len| len < delta,
                &mut st,
            );
            // re-bucket every decreased node; bucket-b landings loop
            list.clear();
            for &w in &decreased {
                let nb = bucket_of(load(&scratch.bits, w as usize), inv_delta);
                if nb == b {
                    list.push(w);
                } else {
                    buckets.entry(nb).or_default().push(w);
                }
            }
            if list.is_empty() {
                break;
            }
        }
        // -- heavy phase: arcs of length >= Δ, once per settled node,
        //    against its bucket-final distance --
        if !settled.is_empty() {
            st.heavy_expansions += settled.len() as u64;
            let decreased = relax(
                net,
                arc_len,
                &scratch.bits,
                &settled,
                |len| len >= delta,
                &mut st,
            );
            for &w in &decreased {
                let nb = bucket_of(load(&scratch.bits, w as usize), inv_delta);
                buckets.entry(nb).or_default().push(w);
            }
        }
    }

    for v in 0..n {
        ws.dist[v] = load(&scratch.bits, v);
    }
    // Dijkstra-equivalent work: every node *expansion* (an out-arc scan
    // of a frontier or heavy-settled node) counts, the way each heap
    // pop does on the scalar path. Counting unique settled nodes here
    // under-reported the bucketed path's actual work, because a node
    // re-entering the frontier across rounds scans its arcs each time.
    // Both terms are deterministic (round frontiers are
    // schedule-invariant sets), so the settle counter stays bitwise
    // thread-count-invariant.
    ws.note_settles(st.expansions + st.heavy_expansions);
    ws.note_delta_stats(&st);
    assign_parents(net, src, arc_len, ws, scratch);
}

/// Relax the selected arcs (`keep(len)`) of every frontier node,
/// returning the nodes whose distance decreased. Fans out on the worker
/// pool above [`PAR_MIN_FRONTIER`]; the sequential and parallel paths
/// produce the identical decrease *set* (chunks assemble in index
/// order). Statistics accumulate into `st`: edge scans are
/// deterministic (per-task locals merged in worker-index order sum to
/// a schedule-invariant total), the `cas_*` pair is not.
fn relax(
    net: &CsrNet,
    arc_len: &[f64],
    bits: &[AtomicU64],
    frontier: &[u32],
    keep: impl Fn(f64) -> bool + Sync,
    st: &mut DeltaStats,
) -> Vec<u32> {
    // per-node relaxation, counting into a task-local tally:
    // (decreases, scans, successes, retries)
    let relax_node = |u: u32| {
        let u = u as usize;
        let du = load(bits, u);
        let mut local: Vec<u32> = Vec::new();
        let (mut scans, mut success, mut retries) = (0u64, 0u64, 0u64);
        let (arcs, heads) = net.out_slots(u);
        for (&a, &w) in arcs.iter().zip(heads) {
            let len = arc_len[a as usize];
            if !keep(len) {
                continue;
            }
            scans += 1;
            let nd = du + len;
            if relax_min(bits, w as usize, nd, &mut retries) {
                success += 1;
                local.push(w);
            }
        }
        (local, scans, success, retries)
    };
    let parallel = frontier.len() >= PAR_MIN_FRONTIER && rayon::current_num_threads() > 1;
    st.note_round(frontier.len(), parallel);
    if parallel {
        let locals: Vec<(Vec<u32>, u64, u64, u64)> =
            frontier.par_iter().map(|&u| relax_node(u)).collect();
        let mut out = Vec::new();
        for (local, scans, success, retries) in locals {
            out.extend(local);
            st.edge_scans += scans;
            st.cas_success += success;
            st.cas_retries += retries;
        }
        out
    } else {
        let mut out = Vec::new();
        for &u in frontier {
            let (local, scans, success, retries) = relax_node(u);
            out.extend(local);
            st.edge_scans += scans;
            st.cas_success += success;
            st.cas_retries += retries;
        }
        out
    }
}

/// Sequential deterministic parent assignment over final distances; see
/// the module docs for the resolution rule and the no-stall argument.
fn assign_parents(
    net: &CsrNet,
    src: NodeId,
    arc_len: &[f64],
    ws: &mut DijkstraWorkspace,
    scratch: &mut Scratch,
) {
    scratch.round_gen += 1;
    let resolved_gen = scratch.round_gen;
    scratch.resolved[src] = resolved_gen;
    ws.parent_arc[src] = NO_ARC;
    let mut frontier: Vec<u32> = vec![src as u32];
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty() {
        scratch.round_gen += 1;
        let cand_gen = scratch.round_gen;
        next.clear();
        for &u in &frontier {
            let ui = u as usize;
            let du = ws.dist[ui];
            let (arcs, heads) = net.out_slots(ui);
            for (&a, &w) in arcs.iter().zip(heads) {
                let wi = w as usize;
                if scratch.resolved[wi] == resolved_gen {
                    continue;
                }
                let dw = ws.dist[wi];
                if !dw.is_finite() || du + arc_len[a as usize] != dw {
                    continue;
                }
                let key = pack(du, u);
                if scratch.cand_mark[wi] != cand_gen {
                    scratch.cand_mark[wi] = cand_gen;
                    scratch.cand_key[wi] = key;
                    scratch.cand_arc[wi] = a;
                    next.push(w);
                } else if (key, a) < (scratch.cand_key[wi], scratch.cand_arc[wi]) {
                    scratch.cand_key[wi] = key;
                    scratch.cand_arc[wi] = a;
                }
            }
        }
        for &w in &next {
            let wi = w as usize;
            scratch.resolved[wi] = resolved_gen;
            ws.parent_arc[wi] = scratch.cand_arc[wi];
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    debug_assert!(
        (0..net.node_count())
            .all(|v| !ws.dist[v].is_finite() || scratch.resolved[v] == resolved_gen),
        "parent pass stalled on a reachable node"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rayon::ThreadPoolBuilder;

    fn random_net(seed: u64, n: usize, extra_edges: usize) -> (Graph, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        // random spanning tree plus extra edges
        for v in 1..n {
            let u = rng.random_range(0..v);
            g.add_unit_edge(u, v).unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                let _ = g.add_unit_edge(u, v);
            }
        }
        let lens: Vec<f64> = (0..g.arc_count())
            .map(|_| rng.random_range(0.01..10.0f64))
            .collect();
        (g, lens)
    }

    #[test]
    fn matches_dijkstra_on_seeded_nets() {
        for seed in 0..20u64 {
            let (g, lens) = random_net(seed, 40, 60);
            let net = CsrNet::from_graph(&g);
            let mut cold = DijkstraWorkspace::new(net.node_count());
            net.dijkstra(0, &lens, &mut cold);
            let mut ws = DijkstraWorkspace::new(net.node_count());
            sssp(&net, 0, &lens, &mut ws);
            for v in 0..net.node_count() {
                assert_eq!(
                    ws.dist[v].to_bits(),
                    cold.dist[v].to_bits(),
                    "seed {seed} node {v}"
                );
            }
            // parents form a valid tree achieving the distances exactly
            for v in 0..net.node_count() {
                if v == 0 || !ws.dist[v].is_finite() {
                    continue;
                }
                let a = ws.parent(v).expect("reachable node has a parent");
                let t = net.arc_tail(a);
                assert_eq!(net.arc_head(a), v);
                assert_eq!((ws.dist[t] + lens[a]).to_bits(), ws.dist[v].to_bits());
            }
        }
    }

    #[test]
    fn repair_composes_on_top_of_bucketed_run() {
        let (g, mut lens) = random_net(7, 40, 60);
        let net = CsrNet::from_graph(&g);
        let mut ws = DijkstraWorkspace::new(net.node_count());
        sssp(&net, 0, &lens, &mut ws);
        // grow a few arcs and repair; distances must match a cold run
        let increased: Vec<u32> = vec![0, 2, 4];
        for &a in &increased {
            lens[a as usize] *= 3.0;
        }
        net.dijkstra_repair(0, &lens, &increased, &mut ws);
        let mut cold = DijkstraWorkspace::new(net.node_count());
        net.dijkstra(0, &lens, &mut cold);
        for v in 0..net.node_count() {
            assert_eq!(ws.dist[v].to_bits(), cold.dist[v].to_bits());
        }
    }

    #[test]
    fn disconnected_nodes_stay_unreachable() {
        let mut g = Graph::new(4);
        g.add_unit_edge(0, 1).unwrap();
        g.add_unit_edge(2, 3).unwrap();
        let net = CsrNet::from_graph(&g);
        let lens = vec![1.0; net.arc_count()];
        let mut ws = DijkstraWorkspace::new(4);
        sssp(&net, 0, &lens, &mut ws);
        assert_eq!(ws.dist[1], 1.0);
        assert!(ws.dist[2].is_infinite());
        assert!(ws.parent(2).is_none());
    }

    #[test]
    fn stats_deterministic_and_settles_count_expansions() {
        let (g, lens) = random_net(11, 300, 900);
        let net = CsrNet::from_graph(&g);
        let run_at = |t: usize| {
            let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
            pool.install(|| {
                let mut ws = DijkstraWorkspace::new(net.node_count());
                sssp(&net, 0, &lens, &mut ws);
                (ws.settles(), ws.delta_stats().clone())
            })
        };
        let (settles, base) = run_at(1);
        // settles credit every expansion: at least one per reachable
        // node, and exactly the expansion totals the stats carry
        assert!(settles >= net.node_count() as u64 - 1);
        assert_eq!(settles, base.expansions + base.heavy_expansions);
        assert_eq!(base.runs, 1);
        assert!(base.buckets > 0 && base.light_rounds > 0);
        // every relaxation round (light or heavy) lands in exactly one
        // scheduling class and one occupancy bin
        assert!(base.par_rounds + base.seq_rounds >= base.light_rounds);
        assert_eq!(
            base.occupancy_hist.iter().sum::<u64>(),
            base.par_rounds + base.seq_rounds
        );
        // every deterministic field is thread-count-invariant; only the
        // cas_* pair may differ between schedules
        for t in [2usize, 8] {
            let (s, st) = run_at(t);
            assert_eq!(s, settles, "{t} threads: settles diverged");
            let mut masked = st.clone();
            masked.cas_success = base.cas_success;
            masked.cas_retries = base.cas_retries;
            assert_eq!(masked, base, "{t} threads: deterministic stats diverged");
        }
        // snapshot differencing isolates one run's activity
        let mut ws = DijkstraWorkspace::new(net.node_count());
        sssp(&net, 0, &lens, &mut ws);
        let snap = ws.delta_stats().clone();
        sssp(&net, 0, &lens, &mut ws);
        let one = ws.delta_stats().since(&snap);
        assert_eq!(one.runs, 1);
        assert_eq!(one.expansions, snap.expansions);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (g, lens) = random_net(3, 300, 900);
        let net = CsrNet::from_graph(&g);
        let runs: Vec<Vec<u64>> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
                pool.install(|| {
                    let mut ws = DijkstraWorkspace::new(net.node_count());
                    sssp(&net, 0, &lens, &mut ws);
                    ws.dist.iter().map(|d| d.to_bits()).collect()
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }
}
